"""Declarative alerting over the monitoring estate: the iGOC ops loop.

Grid2003's operations centre turned telemetry into action: monitoring
feeds were watched, problems became trouble tickets, tickets drove
repairs (§5.2, §5.4 — and the INFN-Grid operations work formalised the
same rules → alarms → tickets structure).  This module is that loop as
data: an :class:`AlertRule` declares *when* a metric is a problem, an
:class:`AlertEngine` evaluates rule sets against
:class:`~repro.monitoring.MetricStore` windows, and an
:class:`AlertMonitor` runs the engine inside a simulation — a firing
rule opens an iGOC ticket, a clearing rule resolves it.

The same engine evaluates *live* against the HTTP service's scrape
history (see ``repro.service.app``), so one rule grammar covers both
the simulated grid and the service serving it.

Two rule kinds:

* ``threshold`` — aggregate the metric over a trailing window and
  compare (``mean(service.gatekeeper.up) < 0.9 over 6h``);
* ``burn_rate`` — SRE-style SLO burn: the error rate over the window,
  divided by the SLO's error budget (``1 - slo_target``), compared to
  a burn-rate threshold.  A burn rate of 1.0 spends the budget exactly
  at sustainable speed; firing at >= 2.0 means the budget is burning
  at least twice too fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterable, List, Optional

from ..core.results import ReportRecord
from ..errors import ConfigurationError
from ..monitoring.core import MetricStore
from ..sim.engine import Engine
from ..sim.units import HOUR
from .igoc import IGOC

#: Legal rule kinds and comparison operators.
KINDS = ("threshold", "burn_rate")
OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}
AGGREGATES = ("mean", "min", "max", "sum", "count", "latest")


@dataclass(frozen=True)
class AlertRule(ReportRecord):
    """One declarative alert condition over a metric window.

    ``store`` names which monitoring store holds the metric (a key of
    the engine's store registry — ``"service-health"``, ``"sched"``,
    ``"data"``, ``"trace"``, or ``"service"`` for the HTTP layer's own
    scrape history).  ``window`` is the trailing evaluation window in
    seconds.  For ``burn_rate`` rules the metric must be a 0/1-style
    up/success series; ``slo_target`` is the availability objective and
    ``threshold`` the burn-rate multiple that fires.
    """

    name: str
    metric: str
    threshold: float
    store: str = "service-health"
    kind: str = "threshold"
    op: str = "<"
    aggregate: str = "mean"
    window: float = 6 * HOUR
    slo_target: float = 0.95
    severity: str = "normal"
    description: str = ""

    def validate(self) -> "AlertRule":
        """Reject malformed rules with an actionable message."""
        if not self.name:
            raise ConfigurationError("alert rule needs a name")
        if not self.metric:
            raise ConfigurationError(f"rule {self.name!r} needs a metric")
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"rule {self.name!r}: kind={self.kind!r} not one of {KINDS}"
            )
        if self.op not in OPS:
            raise ConfigurationError(
                f"rule {self.name!r}: op={self.op!r} not one of "
                f"{tuple(OPS)}"
            )
        if self.aggregate not in AGGREGATES:
            raise ConfigurationError(
                f"rule {self.name!r}: aggregate={self.aggregate!r} not one "
                f"of {AGGREGATES}"
            )
        if not self.window > 0:
            raise ConfigurationError(
                f"rule {self.name!r}: window must be positive, got "
                f"{self.window!r}"
            )
        if self.kind == "burn_rate" and not 0.0 < self.slo_target < 1.0:
            raise ConfigurationError(
                f"rule {self.name!r}: slo_target must be within (0, 1), "
                f"got {self.slo_target!r}"
            )
        if self.severity not in ("low", "normal", "critical"):
            raise ConfigurationError(
                f"rule {self.name!r}: severity={self.severity!r} not one of "
                "('low', 'normal', 'critical')"
            )
        return self

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AlertRule":
        """Build and validate a rule from plain data (config files)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown alert-rule key(s) {unknown!r}; "
                f"accepted: {sorted(known)}"
            )
        return cls(**payload).validate()  # type: ignore[arg-type]

    def evaluate(self, store: MetricStore, now: float) -> Optional[bool]:
        """Is this rule firing at ``now``?  None = no data in window."""
        since = now - self.window
        if self.kind == "burn_rate":
            stats = store.window_stats(self.metric, since, now)
            if not stats["count"]:
                return None
            error_rate = 1.0 - stats["mean"]
            budget = 1.0 - self.slo_target
            burn = error_rate / budget if budget > 0 else float("inf")
            return burn >= self.threshold
        if self.aggregate == "latest":
            sample = store.latest(self.metric)
            if sample is None or sample.time < since:
                return None
            value: float = sample.value
        else:
            stats = store.window_stats(self.metric, since, now)
            if not stats["count"]:
                return None
            value = stats[self.aggregate]
        return OPS[self.op](value, self.threshold)

    def current_value(self, store: MetricStore, now: float) -> Optional[float]:
        """The observed value the rule compared (for display)."""
        since = now - self.window
        if self.kind == "burn_rate":
            stats = store.window_stats(self.metric, since, now)
            if not stats["count"]:
                return None
            budget = 1.0 - self.slo_target
            if budget <= 0:
                return None
            return (1.0 - stats["mean"]) / budget
        if self.aggregate == "latest":
            sample = store.latest(self.metric)
            if sample is None or sample.time < since:
                return None
            return sample.value
        stats = store.window_stats(self.metric, since, now)
        if not stats["count"]:
            return None
        return stats[self.aggregate]


@dataclass
class AlertState:
    """Mutable per-rule evaluation state inside an engine."""

    rule: AlertRule
    firing: bool = False
    since: float = -1.0
    last_value: Optional[float] = None
    transitions: int = 0
    #: The iGOC ticket currently open for this alert (AlertMonitor).
    ticket_id: Optional[int] = None


@dataclass(frozen=True)
class AlertStatusRow(ReportRecord):
    """One rule's observable state (the ``/alerts`` wire row)."""

    name: str
    metric: str
    store: str
    kind: str
    severity: str
    firing: bool
    since: float
    value: Optional[float]
    threshold: float
    transitions: int
    description: str


@dataclass(frozen=True)
class AlertTransition(ReportRecord):
    """One fired/resolved edge in an engine's history."""

    time: float
    rule: str
    event: str  # "fired" | "resolved"
    value: Optional[float]
    severity: str


class AlertEngine:
    """Evaluate a rule set against a registry of metric stores.

    Stateful: tracks each rule's firing state across evaluations and
    records every transition, so callers see edges (fired/resolved),
    not just levels.  Rules whose ``store`` is missing from the
    registry or whose metric has no data in window hold their state
    (missing telemetry is not "resolved").
    """

    def __init__(
        self,
        rules: Iterable[AlertRule],
        stores: Dict[str, MetricStore],
    ) -> None:
        self.rules = [rule.validate() for rule in rules]
        names = [r.name for r in self.rules]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigurationError(f"duplicate alert rule name(s) {dupes!r}")
        self.stores = dict(stores)
        self.states: Dict[str, AlertState] = {
            rule.name: AlertState(rule) for rule in self.rules
        }
        self.history: List[AlertTransition] = []

    def evaluate(self, now: float) -> List[AlertTransition]:
        """One evaluation pass; returns the transitions it produced."""
        edges: List[AlertTransition] = []
        for rule in self.rules:
            state = self.states[rule.name]
            store = self.stores.get(rule.store)
            if store is None:
                continue
            verdict = rule.evaluate(store, now)
            if verdict is None:
                continue
            state.last_value = rule.current_value(store, now)
            if verdict and not state.firing:
                state.firing = True
                state.since = now
                state.transitions += 1
                edges.append(AlertTransition(
                    time=now, rule=rule.name, event="fired",
                    value=state.last_value, severity=rule.severity,
                ))
            elif not verdict and state.firing:
                state.firing = False
                state.since = -1.0
                state.transitions += 1
                edges.append(AlertTransition(
                    time=now, rule=rule.name, event="resolved",
                    value=state.last_value, severity=rule.severity,
                ))
        self.history.extend(edges)
        return edges

    def firing(self) -> List[AlertState]:
        """Currently firing states, rule order."""
        return [self.states[r.name] for r in self.rules
                if self.states[r.name].firing]

    def status_rows(self) -> List[AlertStatusRow]:
        """Every rule's state as wire rows (rule order)."""
        return [
            AlertStatusRow(
                name=rule.name, metric=rule.metric, store=rule.store,
                kind=rule.kind, severity=rule.severity,
                firing=state.firing, since=state.since,
                value=state.last_value, threshold=rule.threshold,
                transitions=state.transitions,
                description=rule.description,
            )
            for rule in self.rules
            for state in (self.states[rule.name],)
        ]


class AlertMonitor:
    """The in-sim ops loop: a periodic process driving an AlertEngine.

    A rule's ``fired`` edge opens an iGOC trouble ticket (site
    ``"grid"`` — these are grid-level conditions, not single-site
    outages); its ``resolved`` edge notes and resolves that ticket.
    This reproduces the paper's telemetry → ticket → action loop at
    the aggregate level the iGOC actually watched.
    """

    def __init__(
        self,
        engine: Engine,
        igoc: IGOC,
        rules: Iterable[AlertRule],
        stores: Dict[str, MetricStore],
        interval: float = 1 * HOUR,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.igoc = igoc
        self.alert_engine = AlertEngine(rules, stores)
        self.interval = interval
        self.evaluations = 0
        self.process = engine.process(self._run(), name="alert-monitor")

    def _run(self):
        while True:
            yield self.engine.timeout(self.interval)
            self.poll_once()

    def poll_once(self) -> List[AlertTransition]:
        """One evaluation + ticket reconciliation pass."""
        self.evaluations += 1
        edges = self.alert_engine.evaluate(self.engine.now)
        for edge in edges:
            state = self.alert_engine.states[edge.rule]
            rule = state.rule
            if edge.event == "fired":
                ticket = self.igoc.tickets.open_ticket(
                    "grid",
                    f"alert {rule.name}: {rule.metric} "
                    f"{rule.op} {rule.threshold:g} "
                    f"(observed {edge.value if edge.value is not None else '?'})",
                    severity=rule.severity,
                )
                self.igoc.tickets.assign(ticket.ticket_id, "igoc")
                state.ticket_id = ticket.ticket_id
            elif state.ticket_id is not None:
                self.igoc.tickets.add_note(
                    state.ticket_id,
                    f"alert {rule.name} cleared at t={edge.time:.0f}s "
                    f"(observed {edge.value if edge.value is not None else '?'})",
                )
                self.igoc.tickets.resolve(state.ticket_id)
                state.ticket_id = None
        return edges


def default_rules() -> List[AlertRule]:
    """The shipped in-sim rule set over the service-health estate.

    Conservative grid-level conditions the iGOC would page on: the
    gatekeeper/GridFTP fleets sagging below 90 % mean liveness over six
    hours, and the gatekeeper SLO (95 % up) burning at twice budget
    speed or faster over twelve hours.
    """
    return [
        AlertRule(
            name="gatekeeper-fleet-down",
            metric="service.gatekeeper.up",
            store="service-health",
            kind="threshold", aggregate="mean", op="<",
            threshold=0.9, window=6 * HOUR, severity="critical",
            description="mean gatekeeper liveness below 90% over 6h",
        ),
        AlertRule(
            name="gridftp-fleet-down",
            metric="service.gridftp.up",
            store="service-health",
            kind="threshold", aggregate="mean", op="<",
            threshold=0.9, window=6 * HOUR, severity="normal",
            description="mean GridFTP liveness below 90% over 6h",
        ),
        AlertRule(
            name="gatekeeper-slo-burn",
            metric="service.gatekeeper.up",
            store="service-health",
            kind="burn_rate", slo_target=0.95,
            threshold=2.0, window=12 * HOUR, severity="critical",
            description="gatekeeper 95% SLO error budget burning at "
                        ">=2x sustainable speed over 12h",
        ),
    ]


def service_rules(queue_depth: int, workers: int) -> List[AlertRule]:
    """The live rule set the HTTP service evaluates on each scrape.

    Windows are short wall-clock trailing windows (the scrape store's
    clock is seconds since service start).
    """
    return [
        AlertRule(
            name="queue-backlog",
            metric="service.queue.depth",
            store="service",
            kind="threshold", aggregate="latest", op=">=",
            threshold=max(1.0, 0.8 * queue_depth), window=600.0,
            severity="critical",
            description=f"job queue at >=80% of depth {queue_depth}",
        ),
        AlertRule(
            name="workers-saturated",
            metric="service.workers.utilization",
            store="service",
            kind="threshold", aggregate="mean", op=">=",
            threshold=1.0, window=300.0, severity="normal",
            description=f"all {workers} worker(s) busy for 5 minutes",
        ),
        AlertRule(
            name="runs-failing",
            metric="service.queue.failed",
            store="service",
            kind="threshold", aggregate="latest", op=">",
            threshold=0.0, window=3600.0, severity="normal",
            description="at least one run failed in the last hour's scrapes",
        ),
        AlertRule(
            name="quota-pressure",
            metric="service.admission.quota_rejections",
            store="service",
            kind="threshold", aggregate="latest", op=">",
            threshold=0.0, window=3600.0, severity="low",
            description="admission control rejected submissions over a "
                        "per-client quota (429s) in the last hour's scrapes",
        ),
    ]


def lint_rules(
    rules: Iterable[AlertRule], metric_names: Iterable[str]
) -> List[str]:
    """Validate a rule set against the real metric namespace.

    Returns a list of problems (empty = clean): structural validation
    failures plus any rule referencing a metric absent from
    ``metric_names``.  CI runs this over the shipped default sets so a
    renamed metric cannot silently orphan a rule.
    """
    problems: List[str] = []
    names = set(metric_names)
    seen: set = set()
    for rule in rules:
        try:
            rule.validate()
        except ConfigurationError as exc:
            problems.append(str(exc))
            continue
        if rule.name in seen:
            problems.append(f"duplicate rule name {rule.name!r}")
        seen.add(rule.name)
        if rule.metric not in names:
            problems.append(
                f"rule {rule.name!r} references unknown metric "
                f"{rule.metric!r} (store {rule.store!r})"
            )
    return problems
