"""Usage and job-execution policies (§5, §5.4, §8).

"An acceptable use policy modeled after that used by the LCG was
adopted" (§5.4), per-site batch policies were configured for each VO
(§5), and §8 lists as lessons both "tools should be deployed and
analyses done to check that the current Grid3 job policies are being
properly enforced" and "sites should publish more information about job
execution and resource usage policies".

:class:`SitePolicy` is the published policy; :func:`audit_policy` is the
§8-requested enforcement checker, run over the ACDC job records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..monitoring.acdc import ACDCDatabase
from ..sim.units import HOUR


@dataclass(frozen=True)
class AcceptableUsePolicy:
    """The grid-wide AUP every VO signs (modelled after LCG's)."""

    text: str = (
        "Resources are provided for the registered VOs' scientific "
        "programmes; users shall not attempt to circumvent allocation "
        "or accounting; sites may suspend access at their discretion."
    )
    accepted_by: Tuple[str, ...] = ()

    def accept(self, vo: str) -> "AcceptableUsePolicy":
        """A copy with ``vo`` recorded as a signatory."""
        if vo in self.accepted_by:
            return self
        return AcceptableUsePolicy(self.text, tuple(sorted((*self.accepted_by, vo))))

    def is_accepted(self, vo: str) -> bool:
        return vo in self.accepted_by


@dataclass(frozen=True)
class SitePolicy:
    """One site's published job-execution policy (§8's ask)."""

    site: str
    max_walltime: float
    allowed_vos: Tuple[str, ...]
    #: Cap on simultaneously running jobs per VO (0 = uncapped).
    max_running_per_vo: int = 0

    def admits(self, vo: str, walltime_request: float) -> bool:
        """Whether a job passes this policy at submit time."""
        if self.allowed_vos and vo not in self.allowed_vos:
            return False
        return walltime_request <= self.max_walltime


def policy_for_site(site, vos: Iterable[str]) -> SitePolicy:
    """Derive the published policy from a live site's configuration."""
    return SitePolicy(
        site=site.name,
        max_walltime=site.config.max_walltime,
        allowed_vos=tuple(sorted(vos)),
    )


@dataclass(frozen=True)
class PolicyViolation:
    """One detected enforcement failure."""

    site: str
    vo: str
    kind: str
    detail: str


def audit_policy(
    database: ACDCDatabase,
    policies: Dict[str, SitePolicy],
) -> List[PolicyViolation]:
    """The §8 enforcement audit: check every completed job against its
    site's published policy.

    Detects: disallowed-VO executions, and walltime overruns beyond the
    published limit (jobs the batch system should have killed sooner).
    """
    violations: List[PolicyViolation] = []
    for record in database.records():
        policy = policies.get(record.site)
        if policy is None:
            continue
        if policy.allowed_vos and record.vo not in policy.allowed_vos:
            violations.append(
                PolicyViolation(record.site, record.vo, "vo-not-allowed",
                                f"job {record.job_id} ran for disallowed VO")
            )
        # Tolerance: one scheduler tick beyond the published limit.
        if record.runtime > policy.max_walltime * 1.01:
            violations.append(
                PolicyViolation(
                    record.site, record.vo, "walltime-overrun",
                    f"job {record.job_id} ran {record.runtime/HOUR:.1f}h "
                    f"(limit {policy.max_walltime/HOUR:.1f}h)",
                )
            )
    return violations
