"""GLUE schema validation (§5.1).

"Conventions were documented to provide grid facility administrators and
operators with uniform instructions with the goal of obtaining a
consistent Grid3 environment over the heterogeneous sites ... Only a few
extensions to the GLUE MDS schema were required."

The schema below is the machine-checkable form of those conventions:
which attributes a site record must publish, their types, and simple
range constraints.  :func:`validate_record` is what the iGOC's
information-quality checks run against every GRIS.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: attribute -> (type, required).  The ``grid3_*`` names are the paper's
#: "few extensions" for application install areas, scratch dirs, SE
#: locations and VDT paths.
GLUE_SCHEMA: Dict[str, Tuple[type, bool]] = {
    # GLUE CE
    "site": (str, True),
    "institution": (str, True),
    "owner_vo": (str, True),
    "total_cpus": (int, True),
    "free_cpus": (int, True),
    "busy_cpus": (int, True),
    "queue_length": (int, False),
    "estimated_wait": (float, False),
    "batch_system": (str, True),
    "max_walltime": (float, True),
    "status": (str, True),
    # GLUE SE
    "se_name": (str, True),
    "se_capacity": (float, True),
    "se_free": (float, True),
    # selection attributes
    "outbound_connectivity": (bool, True),
    "access_bandwidth": (float, True),
    # Grid3 extensions (§5.1)
    "grid3_app_dir": (str, True),
    "grid3_tmp_dir": (str, True),
    "grid3_data_dir": (str, True),
    "grid3_vdt_location": (str, True),
    "grid3_installed_packages": (list, True),
}

#: Allowed values for enumerated attributes.
ENUMS = {
    "batch_system": {"pbs", "condor", "lsf", "fifo"},
    "status": {"online", "offline", "degraded"},
}


def validate_record(record: Dict[str, object]) -> List[str]:
    """Check one published site record against the Grid3 GLUE conventions.

    Returns a list of problems (empty = conformant).
    """
    problems: List[str] = []
    for attr, (expected_type, required) in GLUE_SCHEMA.items():
        if attr not in record:
            if required:
                problems.append(f"missing required attribute {attr}")
            continue
        value = record[attr]
        if expected_type is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif expected_type is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected_type)
        if not ok:
            problems.append(
                f"{attr} has type {type(value).__name__}, "
                f"expected {expected_type.__name__}"
            )
    for attr, allowed in ENUMS.items():
        value = record.get(attr)
        if value is not None and value not in allowed:
            problems.append(f"{attr}={value!r} not in {sorted(allowed)}")
    # Consistency constraints (only when the operands are numeric —
    # type problems were already reported above).
    def _num(key):
        value = record.get(key)
        return value if isinstance(value, (int, float)) and not isinstance(value, bool) else None

    total, free, busy = _num("total_cpus"), _num("free_cpus"), _num("busy_cpus")
    if None not in (total, free, busy) and free + busy > total:
        problems.append("free_cpus + busy_cpus exceeds total_cpus")
    cap, se_free = _num("se_capacity"), _num("se_free")
    if None not in (cap, se_free) and se_free > cap:
        problems.append("se_free exceeds se_capacity")
    # Grid3 convention: directories are absolute paths.
    for attr in ("grid3_app_dir", "grid3_tmp_dir", "grid3_data_dir",
                 "grid3_vdt_location"):
        value = record.get(attr)
        if isinstance(value, str) and not value.startswith("/"):
            problems.append(f"{attr}={value!r} is not an absolute path")
    return problems


def validate_giis(giis) -> Dict[str, List[str]]:
    """Validate every live record in an index; returns site -> problems
    (only sites with problems appear)."""
    out: Dict[str, List[str]] = {}
    for record in giis.query_all():
        problems = validate_record(record)
        if problems:
            out[str(record.get("site", "?"))] = problems
    return out
