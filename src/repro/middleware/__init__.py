"""Grid middleware behavioural models: GSI, GRAM, GridFTP, RLS, MDS,
VOMS, Pacman/VDT, SRM."""

from .gram import (
    DEFAULT_OVERLOAD_THRESHOLD,
    LOAD_PER_MANAGED_JOB,
    SUBMISSION_SPIKE_LOAD,
    Gatekeeper,
    attach_gatekeeper,
)
from .gridftp import GridFTPServer, NetLoggerEvent, attach_gridftp, transfer
from .dcache import DCachePoolManager, Pool
from .gsi import (
    Authenticator,
    Certificate,
    CertificateAuthority,
    GridMapFile,
    Proxy,
)
from .netlogger import (
    TransferLifeline,
    TransferStatistics,
    analyse_server,
    compute_statistics,
    find_anomalies,
    grid_archive,
    reconstruct_lifelines,
)
from .mds import GIIS, GRIS, build_mds_hierarchy, glue_record, renew_registrations
from .pacman import (
    Package,
    PacmanCache,
    certify_site,
    fix_misconfiguration,
    install,
    resolve,
    validate_site,
)
from .rls import LocalReplicaCatalog, Replica, ReplicaLocationIndex
from .srm import SRMService, attach_srm
from .vdt import GRID3_SITE_PACKAGE, REQUIRED_PACKAGES, vdt_package_set
from .voms import VOMSServer, VOUser, generate_gridmap, refresh_site_gridmaps

__all__ = [
    "Authenticator",
    "DCachePoolManager",
    "Pool",
    "TransferLifeline",
    "TransferStatistics",
    "analyse_server",
    "compute_statistics",
    "find_anomalies",
    "grid_archive",
    "reconstruct_lifelines",
    "Certificate",
    "CertificateAuthority",
    "DEFAULT_OVERLOAD_THRESHOLD",
    "GIIS",
    "GRID3_SITE_PACKAGE",
    "GRIS",
    "Gatekeeper",
    "GridFTPServer",
    "GridMapFile",
    "LOAD_PER_MANAGED_JOB",
    "LocalReplicaCatalog",
    "NetLoggerEvent",
    "Package",
    "PacmanCache",
    "Proxy",
    "REQUIRED_PACKAGES",
    "Replica",
    "ReplicaLocationIndex",
    "SRMService",
    "SUBMISSION_SPIKE_LOAD",
    "VOMSServer",
    "VOUser",
    "attach_gatekeeper",
    "attach_gridftp",
    "attach_srm",
    "build_mds_hierarchy",
    "certify_site",
    "fix_misconfiguration",
    "generate_gridmap",
    "glue_record",
    "install",
    "refresh_site_gridmaps",
    "renew_registrations",
    "resolve",
    "transfer",
    "validate_site",
    "vdt_package_set",
]
