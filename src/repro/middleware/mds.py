"""Monitoring and Discovery Service: GRIS / GIIS hierarchy with a
GLUE-style schema (§5.1–5.2).

Each site runs a :class:`GRIS` that publishes its configuration and
dynamic state.  GRISes register upward into VO-level :class:`GIIS` index
servers, which in turn register into the top-level GIIS at the iGOC —
"registration to a VO-level set of services such as index servers"
followed by "top-layer services at the iVDGL Grid Operations Center".

The schema follows GLUE with the Grid3 extensions the paper calls out:
application installation areas, temporary working directories, storage
element locations, and VDT software locations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ServiceUnavailableError
from ..services import GridService
from ..sim.engine import Engine
from ..sim.units import MINUTE


def glue_record(site) -> Dict[str, object]:
    """Build the GLUE(+Grid3 extensions) record for a live Site.

    This is the information-provider function a site's GRIS runs.
    """
    lrm = site.services.get("lrm")
    queue_length = getattr(lrm, "queue_length", 0) if lrm is not None else 0
    free = site.cluster.free_cpus
    # §8 lesson ("Job Resource Requirements"): publish scheduling-useful
    # load information.  The estimate is the classic queue-theory rough
    # cut: waiting work divided by drain capacity.
    if free > 0:
        estimated_wait = 0.0
    else:
        total = max(1, site.cluster.total_cpus)
        estimated_wait = (queue_length + 1) / total * 3600.0
    return {
        # GLUE CE attributes
        "site": site.name,
        "institution": site.institution,
        "owner_vo": site.owner_vo,
        "total_cpus": site.cluster.total_cpus,
        "free_cpus": site.cluster.free_cpus,
        "busy_cpus": site.cluster.busy_cpus,
        "queue_length": queue_length,
        "estimated_wait": estimated_wait,
        "batch_system": site.config.batch_system,
        "max_walltime": site.config.max_walltime,
        "status": site.status,
        # GLUE SE attributes
        "se_name": site.storage.name,
        "se_capacity": site.storage.capacity,
        "se_free": site.storage.free,
        # §6.4 selection criteria
        "outbound_connectivity": site.config.outbound_connectivity,
        "access_bandwidth": site.access_bandwidth,
        # Grid3 schema extensions (§5.1)
        "grid3_app_dir": site.config.app_dir,
        "grid3_tmp_dir": site.config.tmp_dir,
        "grid3_data_dir": site.config.data_dir,
        "grid3_vdt_location": site.config.vdt_location,
        "grid3_installed_packages": sorted(site.installed_packages),
    }


class GRIS(GridService):
    """A site's information provider: cached GLUE record with a TTL.

    MDS GRIS answers queries from a cache refreshed by information
    providers; a short TTL trades staleness for provider load.
    """

    _counter_names = ("queries_served",)

    def __init__(self, engine: Engine, site, ttl: float = 5 * MINUTE,
                 provider: Optional[Callable] = None) -> None:
        super().__init__(role="gris", owner=site.name, engine=engine)
        self.site = site
        self.ttl = ttl
        self.provider = provider or glue_record
        self._cache: Optional[Dict[str, object]] = None
        self._cached_at = -float("inf")
        self.queries_served = 0
        #: Called (no args) whenever the cache is dropped by hand —
        #: index layers holding sweep snapshots subscribe here.
        self.on_invalidate: List[Callable[[], None]] = []

    def query(self) -> Dict[str, object]:
        """The site's current record (cached within the TTL)."""
        self.require_available("GLUE query")
        now = self.engine.now
        if self._cache is None or now - self._cached_at >= self.ttl:
            self._cache = self.provider(self.site)
            self._cached_at = now
        self.queries_served += 1
        return dict(self._cache)

    @property
    def cache_valid_until(self) -> float:
        """Sim-time at which the current cached record expires."""
        if self._cache is None:
            return -float("inf")
        return self._cached_at + self.ttl

    def invalidate(self) -> None:
        """Drop the cache (e.g. after a Pacman install changes config)."""
        self._cache = None
        for observer in self.on_invalidate:
            observer()


class GIIS(GridService):
    """An index server aggregating GRIS (or lower GIIS) registrations.

    Registrations are soft-state: they expire unless renewed, so a dead
    site ages out of the index rather than poisoning it forever.
    """

    def __init__(self, engine: Engine, name: str, registration_ttl: float = 30 * MINUTE) -> None:
        super().__init__(role="giis", owner=name, engine=engine)
        self.name = name
        self.registration_ttl = registration_ttl
        #: site name -> (GRIS-or-GIIS, last renewal time)
        self._registry: Dict[str, tuple] = {}
        # Sweep cache: ``query_all`` is the matchmaker's per-selection
        # hot path, but its result only changes when a GRIS cache
        # expires, a registration churns, or a source flips
        # availability.  Caching the sweep (and its online subset)
        # between those events turns per-selection cost from
        # O(total sites) GRIS round-trips into an O(1) snapshot reuse.
        # Every record-changing event below invalidates the snapshot,
        # so cached and uncached sweeps are byte-identical.
        self._sweep: Optional[List[Dict[str, object]]] = None
        self._sweep_online: List[Dict[str, object]] = []
        self._sweep_until = -float("inf")
        #: Only direct GRIS registrants have knowable cache lifetimes;
        #: a nested-GIIS registrant disables caching entirely.
        self._cacheable = True
        self._watched: set = set()

    def _invalidate_sweep(self, *_args) -> None:
        self._sweep = None

    def register(self, name: str, source) -> None:
        """Register (or renew) a source under ``name``."""
        self._registry[name] = (source, self.engine.now)
        self._sweep = None
        if isinstance(source, GRIS):
            key = id(source)
            if key not in self._watched:
                self._watched.add(key)
                source.on_transition.append(self._invalidate_sweep)
                source.on_invalidate.append(self._invalidate_sweep)
        else:
            self._cacheable = False

    def deregister(self, name: str) -> None:
        """Explicitly remove a registration."""
        self._registry.pop(name, None)
        self._sweep = None

    def registered_names(self) -> List[str]:
        """Names with live (unexpired) registrations."""
        now = self.engine.now
        return sorted(
            name
            for name, (_src, at) in self._registry.items()
            if now - at <= self.registration_ttl
        )

    def query(self, name: str) -> Dict[str, object]:
        """Fetch one registrant's record (raises if expired/unknown/down)."""
        self.require_available(f"query of {name}")
        entry = self._registry.get(name)
        if entry is None:
            raise KeyError(name)
        source, at = entry
        if self.engine.now - at > self.registration_ttl:
            raise KeyError(f"{name} registration expired")
        return source.query() if isinstance(source, GRIS) else source.query(name)

    def query_all(self) -> List[Dict[str, object]]:
        """Records from every live registrant, skipping unreachable ones.

        Skipping (rather than failing) mirrors real MDS behaviour: one
        dead site must not take the whole index down.

        The sweep is cached until the earliest GRIS-cache or
        registration expiry (and invalidated by registry churn, source
        availability transitions, and explicit GRIS invalidation), so
        repeated sweeps inside that window reuse the snapshot.  The
        returned list is fresh per call; the record dicts are shared —
        treat them as read-only, as every in-tree consumer does.
        """
        self.require_available("index sweep")
        if self._sweep is not None and self.engine.now < self._sweep_until:
            return list(self._sweep)
        records = []
        valid_until = float("inf")
        ttl = self.registration_ttl
        for name in self.registered_names():
            try:
                records.append(self.query(name))
            except (ServiceUnavailableError, KeyError):
                continue
            if self._cacheable:
                source, at = self._registry[name]
                valid_until = min(
                    valid_until, source.cache_valid_until, at + ttl
                )
        if self._cacheable:
            self._sweep = records
            self._sweep_online = [
                rec for rec in records if rec.get("status") == "online"
            ]
            self._sweep_until = valid_until
            return list(records)
        return records

    def active_records(self) -> List[Dict[str, object]]:
        """The cached sweep restricted to records with online status —
        what the matchmaker actually ranks.  Offline records would be
        dropped by its admissibility filter anyway, so pre-splitting the
        snapshot makes per-selection cost O(active sites)."""
        self.require_available("index sweep")
        if self._sweep is None or self.engine.now >= self._sweep_until:
            records = self.query_all()
            if not self._cacheable:
                return [r for r in records if r.get("status") == "online"]
        return list(self._sweep_online)

    def search(self, predicate: Callable[[Dict[str, object]], bool]) -> List[Dict[str, object]]:
        """All live records satisfying ``predicate`` — the discovery
        query the matchmaker (§6.4) runs."""
        return [rec for rec in self.query_all() if predicate(rec)]


def build_mds_hierarchy(engine: Engine, sites, vos: List[str]) -> Dict[str, object]:
    """Wire the full Grid3 MDS tree: per-site GRIS → VO GIIS → top GIIS.

    Returns ``{"gris": {site: GRIS}, "vo_giis": {vo: GIIS}, "top": GIIS}``.
    Each site's GRIS is also attached as its ``"gris"`` service.
    """
    grises: Dict[str, GRIS] = {}
    vo_giis: Dict[str, GIIS] = {vo: GIIS(engine, f"giis-{vo}") for vo in vos}
    top = GIIS(engine, "giis-igoc")
    for site in sites:
        # Reuse a GRIS installed by the VDT Pacman package, if any.
        gris = site.services.get("gris")
        if not isinstance(gris, GRIS):
            gris = GRIS(engine, site)
        grises[site.name] = gris
        site.attach_service("gris", gris)
        vo_giis[site.owner_vo].register(site.name, gris)
        top.register(site.name, gris)
    return {"gris": grises, "vo_giis": vo_giis, "top": top}


def renew_registrations(mds: Dict[str, object]) -> None:
    """Renew every live site's registration (the periodic MDS cron)."""
    top: GIIS = mds["top"]  # type: ignore[assignment]
    for name, gris in mds["gris"].items():  # type: ignore[union-attr]
        if gris.site.online:
            top.register(name, gris)
            mds["vo_giis"][gris.site.owner_vo].register(name, gris)  # type: ignore[index]
