"""Grid Security Infrastructure: certificates, proxies, grid-map files.

§5.1: the Grid3 installation included "The Globus Toolkit's Grid
security infrastructure (GSI)".  §5.3: "We generated the local grid-map
files that map user identities presented in X509 certificates to local
accounts by calling an EDG script to contact each VO's VOMS server."

This is a *behavioural* model: we track distinguished names, issuers,
validity windows and the DN→account mapping — enough to reproduce the
operational failure modes (expired proxies, unmapped users) without any
actual cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AuthenticationError, AuthorizationError
from ..sim.engine import Engine
from ..sim.units import HOUR


@dataclass(frozen=True)
class Certificate:
    """A long-lived X.509-style identity credential."""

    subject: str        # distinguished name, e.g. "/DC=org/DC=doegrids/CN=Jane Doe"
    issuer: str         # CA name
    not_after: float    # sim-time expiry

    def valid_at(self, now: float) -> bool:
        """Whether the credential is within its validity window."""
        return now <= self.not_after


@dataclass(frozen=True)
class Proxy:
    """A short-lived delegated credential derived from a certificate.

    Real Grid3 proxies defaulted to 12 hours; long production jobs
    outliving their proxy was a real operational failure mode.
    """

    certificate: Certificate
    not_after: float

    @property
    def subject(self) -> str:
        """The owning identity's DN."""
        return self.certificate.subject

    def valid_at(self, now: float) -> bool:
        """Proxy and its signing certificate must both be unexpired."""
        return now <= self.not_after and self.certificate.valid_at(now)


class CertificateAuthority:
    """Issues certificates; gatekeepers trust a configured CA set."""

    def __init__(self, name: str, engine: Engine, cert_lifetime: float = 365 * 24 * HOUR) -> None:
        self.name = name
        self.engine = engine
        self.cert_lifetime = cert_lifetime
        self.issued: List[Certificate] = []

    def issue(self, subject: str) -> Certificate:
        """Issue a certificate for ``subject`` valid from now."""
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            not_after=self.engine.now + self.cert_lifetime,
        )
        self.issued.append(cert)
        return cert

    def make_proxy(self, cert: Certificate, lifetime: float = 12 * HOUR) -> Proxy:
        """Create a delegated proxy (default 12 h, the Globus default)."""
        return Proxy(certificate=cert, not_after=self.engine.now + lifetime)


class GridMapFile:
    """The per-site DN → local account map (§5.3).

    Regenerated periodically from the VOMS servers; a stale map is one of
    the "account privileges" deployment problems §6.3 mentions.
    """

    def __init__(self) -> None:
        self._map: Dict[str, str] = {}
        #: Sim-time of the last regeneration, for staleness checks.
        self.generated_at: float = 0.0

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, dn: str) -> bool:
        return dn in self._map

    def add(self, dn: str, account: str) -> None:
        """Map a DN to a local (group) account."""
        self._map[dn] = account

    def remove(self, dn: str) -> None:
        """Drop a mapping if present."""
        self._map.pop(dn, None)

    def account_for(self, dn: str) -> str:
        """The local account for ``dn``; raises AuthorizationError if
        unmapped."""
        try:
            return self._map[dn]
        except KeyError:
            raise AuthorizationError(f"no grid-map entry for {dn!r}") from None

    def entries(self) -> Dict[str, str]:
        """Snapshot of all mappings."""
        return dict(self._map)


class Authenticator:
    """GSI authentication as performed by a gatekeeper.

    Checks, in order: proxy validity (expiry), issuer trust, grid-map
    membership.  Returns the mapped local account on success.
    """

    def __init__(self, engine: Engine, trusted_cas: List[str], gridmap: GridMapFile) -> None:
        self.engine = engine
        self.trusted_cas = set(trusted_cas)
        self.gridmap = gridmap
        #: Counters for the troubleshooting reports (§8 asks for better
        #: accounting APIs — we provide them natively).
        self.accepted = 0
        self.rejected = 0

    def authenticate(self, proxy: Proxy) -> str:
        """Validate ``proxy`` and return the mapped local account.

        Raises :class:`AuthenticationError` for expired/untrusted
        credentials and :class:`AuthorizationError` for unmapped DNs.
        """
        now = self.engine.now
        if not proxy.valid_at(now):
            self.rejected += 1
            raise AuthenticationError(f"expired credential for {proxy.subject!r}")
        if proxy.certificate.issuer not in self.trusted_cas:
            self.rejected += 1
            raise AuthenticationError(
                f"untrusted CA {proxy.certificate.issuer!r} for {proxy.subject!r}"
            )
        try:
            account = self.gridmap.account_for(proxy.subject)
        except AuthorizationError:
            self.rejected += 1
            raise
        self.accepted += 1
        return account
