"""Virtual Organization Membership Service (EDG VOMS), §5.3.

"To simplify user access to Grid3 resources and reduce the burden on
grid facility administrators, we deployed EDG's Virtual Organization
Management System (VOMS).  We also used group accounts at sites, with a
naming convention for each VO."

One :class:`VOMSServer` per VO holds the membership database; the
:func:`generate_gridmap` function models the EDG script that contacts
every VO's VOMS server and rewrites a site's grid-map file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import ServiceUnavailableError
from ..services import GridService
from ..sim.engine import Engine
from .gsi import Certificate, CertificateAuthority, GridMapFile, Proxy


@dataclass
class VOUser:
    """A registered VO member."""

    name: str
    dn: str
    vo: str
    #: "admin" users are the ~10 % of users who are application
    #: administrators performing most job submissions (§7).
    role: str = "user"
    certificate: Optional[Certificate] = None


class VOMSServer(GridService):
    """Membership database for one VO.

    Central services can be down; §5.4's support model makes VO
    organisations responsible for their own VOMS — hence the
    GridService lifecycle and its downtime ledger.
    """

    def __init__(self, engine: Engine, vo: str, ca: CertificateAuthority) -> None:
        super().__init__(role="voms", owner=vo, engine=engine)
        self.vo = vo
        self.ca = ca
        self._members: Dict[str, VOUser] = {}

    def __len__(self) -> int:
        return len(self._members)

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out["members"] = float(len(self._members))
        out["admins"] = float(len(self.admins()))
        return out

    def register(self, name: str, role: str = "user") -> VOUser:
        """Add a member, issuing them a certificate.  Idempotent by name."""
        existing = self._members.get(name)
        if existing is not None:
            return existing
        dn = f"/DC=org/DC=grid3/O={self.vo}/CN={name}"
        user = VOUser(name=name, dn=dn, vo=self.vo, role=role,
                      certificate=self.ca.issue(dn))
        self._members[name] = user
        return user

    def remove(self, name: str) -> None:
        """Remove a member if present."""
        self._members.pop(name, None)

    def members(self) -> List[VOUser]:
        """All registered members."""
        return list(self._members.values())

    def admins(self) -> List[VOUser]:
        """Members with the application-administrator role."""
        return [u for u in self._members.values() if u.role == "admin"]

    def member(self, name: str) -> VOUser:
        """Look up a member by name (KeyError if absent)."""
        return self._members[name]

    def proxy_for(self, name: str, lifetime: float = 12 * 3600.0) -> Proxy:
        """Create a fresh proxy for a member (the user's grid-proxy-init)."""
        user = self._members[name]
        assert user.certificate is not None
        return self.ca.make_proxy(user.certificate, lifetime)

    def dns(self) -> List[str]:
        """All member DNs — what the gridmap generation script pulls."""
        self.require_available("gridmap pull")
        return [u.dn for u in self._members.values()]


def generate_gridmap(
    site,  # repro.fabric.Site; untyped to avoid a cycle
    voms_servers: Iterable[VOMSServer],
    now: float = 0.0,
) -> GridMapFile:
    """The EDG gridmap script: pull every VO's DNs, map to group accounts.

    A VO whose VOMS server is unreachable simply contributes no entries —
    its users lose access until the next regeneration, exactly the
    operational behaviour the paper's support model implies.
    """
    gridmap = GridMapFile()
    for server in voms_servers:
        account = site.add_account(server.vo)
        try:
            dns = server.dns()
        except ServiceUnavailableError:
            continue
        for dn in dns:
            gridmap.add(dn, account)
    gridmap.generated_at = now
    return gridmap


def refresh_site_gridmaps(sites: Iterable, voms_servers: List[VOMSServer], now: float = 0.0) -> None:
    """Regenerate every site's grid-map (the periodic cron the real Grid3
    ran).  Attaches the map as the site service ``"gridmap"``."""
    for site in sites:
        site.attach_service("gridmap", generate_gridmap(site, voms_servers, now))
