"""GRAM: the gatekeeper and jobmanagers, with the §6.4 load model.

The paper's gatekeeper characterisation, reproduced here verbatim as
model constants:

  "a typical gatekeeper using a queue manager will experience a
  sustained one minute load of ~225 when managing ~1000 computational
  jobs.  This load can sharply increase when the job submission
  frequency is high ... For computational jobs that only require a
  minimal amount of production node file staging, a factor of two can
  be applied to the sustained load; on the other hand computational
  jobs requiring a substantial amount of file staging the factor can
  increase to three or four."

So: base load = 0.225 per managed job, multiplied by the job's staging
factor (1 / 2 / 3.5), plus a submission-frequency spike term (recent
submissions in the last minute).  Above an overload threshold the
gatekeeper sheds incoming submissions — §6.1 names "gatekeeper
overloading" as a leading site failure.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from ..core.job import Job, JobSpec, JobState
from ..errors import (
    AuthenticationError,
    AuthorizationError,
    GatekeeperOverloadError,
    SubmissionError,
)
from ..services import GridService, ServiceLog
from ..sim.engine import Engine
from ..sim.units import MINUTE
from ..trace import NULL_SPAN
from .gsi import Authenticator, Proxy

#: §6.4: load ~225 at ~1000 managed jobs.
LOAD_PER_MANAGED_JOB = 225.0 / 1000.0
#: Transient load added per submission, decaying over one minute.
SUBMISSION_SPIKE_LOAD = 0.5
#: Above this one-minute load the gatekeeper sheds new submissions.
DEFAULT_OVERLOAD_THRESHOLD = 450.0


class Gatekeeper(GridService):
    """A site's GRAM gatekeeper: auth, load accounting, LRM hand-off."""

    #: Retained GRAM log lines (ring semantics via ServiceLog).
    LOG_LIMIT = 50_000

    _counter_names = (
        "submissions_accepted",
        "submissions_rejected",
        "overload_rejections",
        "peak_load",
    )

    def __init__(
        self,
        engine: Engine,
        site,
        authenticator: Authenticator,
        overload_threshold: float = DEFAULT_OVERLOAD_THRESHOLD,
    ) -> None:
        super().__init__(role="gatekeeper", owner=site.name, engine=engine)
        self.site = site
        self.authenticator = authenticator
        self.overload_threshold = overload_threshold
        #: Jobs accepted and not yet finished (each has a jobmanager).
        self.managed: Dict[int, Job] = {}
        #: Recent submission timestamps for the spike term.
        self._recent_submissions: deque = deque()
        #: The local resource manager; wired by the grid builder.
        self.lrm = None
        #: Counters for §8's requested accounting APIs.
        self.submissions_accepted = 0
        self.submissions_rejected = 0
        self.overload_rejections = 0
        self.peak_load = 0.0
        #: GRAM log (start/end/error lines MonALISA agents tail, §5.2).
        self.log = ServiceLog(self.LOG_LIMIT)

    # -- load model -----------------------------------------------------------
    def _prune_spikes(self) -> None:
        cutoff = self.engine.now - MINUTE
        while self._recent_submissions and self._recent_submissions[0] < cutoff:
            self._recent_submissions.popleft()

    def load(self) -> float:
        """Current one-minute load average per the §6.4 model."""
        self._prune_spikes()
        sustained = sum(
            LOAD_PER_MANAGED_JOB * job.spec.staging_load_factor
            for job in self.managed.values()
        )
        spike = SUBMISSION_SPIKE_LOAD * len(self._recent_submissions)
        return sustained + spike

    @property
    def managed_count(self) -> int:
        """Number of jobs with live jobmanagers."""
        return len(self.managed)

    def _record(self, event: str, job_id: int, detail: str = "") -> None:
        self.log.append((self.engine.now, event, job_id, detail))

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out["managed_jobs"] = float(self.managed_count)
        return out

    # -- submission protocol --------------------------------------------------
    def submit(self, proxy: Proxy, spec: JobSpec, span=None) -> Job:
        """GRAM job submission: authenticate, admit, enqueue at the LRM.

        Raises AuthenticationError / AuthorizationError on credential
        problems, GatekeeperOverloadError when shedding load,
        ServiceUnavailableError when the gatekeeper (or its LRM) is down,
        and SubmissionError if no LRM is attached.

        ``span`` is the submitter's attempt span: the GRAM handshake is
        recorded under it, and on acceptance a ``queue`` span is left
        open for the runner to close when the LRM starts the job.
        """
        span = span or NULL_SPAN
        sub = span.child("gram.submit", phase="submit", site=self.site.name)
        try:
            self.require_available("job submission")
            account = self.authenticator.authenticate(proxy)  # may raise
            current_load = self.load()
            self.peak_load = max(self.peak_load, current_load)
            if current_load > self.overload_threshold:
                self.overload_rejections += 1
                self.submissions_rejected += 1
                self._record("overload_reject", -1, f"load={current_load:.0f}")
                raise GatekeeperOverloadError(
                    f"gatekeeper at {self.site.name} overloaded "
                    f"(load {current_load:.0f} > {self.overload_threshold:.0f})"
                )
            if self.lrm is None:
                self.submissions_rejected += 1
                raise SubmissionError(f"no jobmanager/LRM at {self.site.name}")
            self._recent_submissions.append(self.engine.now)
            job = Job(spec=spec, site_name=self.site.name)
            job.mark(JobState.PENDING, self.engine.now)
            self.managed[job.job_id] = job
            try:
                self.lrm.submit(job)
            except Exception:
                # LRM policy rejection: the jobmanager exits immediately.
                self.managed.pop(job.job_id, None)
                self.submissions_rejected += 1
                raise
        except BaseException as exc:
            sub.finish("error", error=type(exc).__name__)
            raise
        self.submissions_accepted += 1
        self._record("submit", job.job_id, f"{spec.name} as {account}")
        sub.finish("ok")
        job.trace = span or None
        # Opened here at LRM-enqueue time; the runner closes it at start.
        span.child("queue", phase="queue", site=self.site.name)
        return job

    def job_finished(self, job: Job) -> None:
        """LRM callback: the jobmanager for ``job`` exits."""
        self.managed.pop(job.job_id, None)
        self._record(
            "done" if job.succeeded else "failed",
            job.job_id,
            type(job.error).__name__ if job.error else "",
        )

    def cancel(self, job: Job) -> None:
        """Client-initiated cancel, forwarded to the LRM."""
        if self.lrm is not None:
            self.lrm.cancel(job)
        self.managed.pop(job.job_id, None)
        self._record("cancel", job.job_id)

    def __repr__(self) -> str:
        return f"<Gatekeeper {self.site.name} load={self.load():.0f} jobs={self.managed_count}>"


def attach_gatekeeper(
    engine: Engine,
    site,
    authenticator: Authenticator,
    **kwargs,
) -> Gatekeeper:
    """Create a gatekeeper and register it as the site's ``gatekeeper``
    service."""
    gk = Gatekeeper(engine, site, authenticator, **kwargs)
    site.attach_service("gatekeeper", gk)
    return gk
