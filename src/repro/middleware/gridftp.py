"""GridFTP: bulk data movement between site storage elements.

§6.3's demonstrator showed "2 TB across Grid3 per day" with the main
deployment problems being "account privileges, ports, and firewalls".
The server model has a bounded connection pool (real GridFTP servers
were configured with connection limits), a per-transfer setup latency,
and optional NetLogger instrumentation, which the paper's CS
demonstrator used: "NetLogger events were generated at program start,
end, and on errors (the default)".

Transfers are written as plain generators so callers compose them with
``yield from`` inside their own processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import (
    NetworkInterruptionError,
    StorageFullError,
    TransferError,
)
from ..services import GridService, ServiceLog
from ..sim.engine import Engine
from ..sim.resources import Resource
from ..sim.units import SECOND
from ..trace import NULL_SPAN


@dataclass(frozen=True)
class NetLoggerEvent:
    """One NetLogger record: program start/end/error plus I/O details."""

    time: float
    event: str        # "transfer.start" | "transfer.end" | "transfer.error"
    host: str
    lfn: str
    size: float
    detail: str = ""


class GridFTPServer(GridService):
    """A site's GridFTP endpoint: connection pool + instrumentation."""

    #: Keep at most this many NetLogger events per server (ring buffer).
    NETLOG_LIMIT = 10_000

    _counter_names = (
        "bytes_sent",
        "bytes_received",
        "transfers_ok",
        "transfers_failed",
    )

    def __init__(
        self,
        engine: Engine,
        site,
        max_connections: int = 16,
        setup_latency: float = 2 * SECOND,
    ) -> None:
        super().__init__(role="gridftp", owner=site.name, engine=engine)
        self.site = site
        self.connections = Resource(engine, max_connections)
        self.setup_latency = setup_latency
        self.netlogger: ServiceLog = ServiceLog(self.NETLOG_LIMIT)
        #: Lifetime counters for the monitoring layer.
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.transfers_ok = 0
        self.transfers_failed = 0

    def log(self, event: str, lfn: str, size: float, detail: str = "") -> None:
        """Append a NetLogger record (bounded)."""
        # NETLOG_LIMIT is an overridable (class or instance) knob; keep
        # the ring bound in sync with whatever the caller set it to.
        self.netlogger.capacity = self.NETLOG_LIMIT
        self.netlogger.append(
            NetLoggerEvent(self.engine.now, event, self.site.name, lfn, size, detail)
        )

    def __repr__(self) -> str:
        return f"<GridFTP {self.site.name} {self.connections.in_use}/{self.connections.capacity}>"


def attach_gridftp(engine: Engine, site, **kwargs) -> GridFTPServer:
    """Create a server and register it as the site's ``gridftp`` service."""
    server = GridFTPServer(engine, site, **kwargs)
    site.attach_service("gridftp", server)
    return server


def transfer(
    engine: Engine,
    src_site,
    dst_site,
    lfn: str,
    size: float,
    write_to_storage: bool = True,
    reservation=None,
    rls=None,
    span=None,
):
    """Generator: move ``size`` bytes of ``lfn`` from src to dst.

    Sequence: acquire a connection slot at both endpoints, pay setup
    latency, run the network flow (max-min fair with all concurrent
    traffic), then commit the file to the destination SE (raising
    :class:`StorageFullError` on a full disk — the §6.2 failure class —
    unless ``reservation`` covers it).  With ``rls`` given, the new
    replica is registered (the ATLAS/LIGO publication step).

    With ``span`` given, the whole transfer (slot wait included) is
    recorded as a child span — the NetLogger lifeline, inside the
    owning job's trace.

    Returns the byte count on success.  Always releases its connection
    slots, even on failure.
    """
    if size < 0:
        raise TransferError(f"negative transfer size for {lfn}")
    tspan = (span or NULL_SPAN).child(
        f"gridftp {lfn}", phase="transfer",
        src=src_site.name, dst=dst_site.name, bytes=size,
    )
    try:
        src_server: GridFTPServer = src_site.service("gridftp")
        dst_server: GridFTPServer = dst_site.service("gridftp")
        for server in (src_server, dst_server):
            if not server.available:
                server.transfers_failed += 1
            server.require_available(f"transfer of {lfn}")

        # Acquire connection slots in a canonical (site-name) order so that
        # opposing transfer pairs (A->B while B->A) can never deadlock on
        # exhausted connection pools.
        ordered = sorted({src_server, dst_server}, key=lambda s: s.site.name)
        slots = [(server, server.connections.request()) for server in ordered]
        granted = []
        try:
            for server, slot in slots:
                yield slot
                granted.append((server, slot))
            src_server.log("transfer.start", lfn, size)
            if src_server.setup_latency + dst_server.setup_latency > 0:
                yield engine.timeout(src_server.setup_latency + dst_server.setup_latency)
            flow = src_site.network.start_transfer(
                src_site.route_to(dst_site), size, label=lfn
            )
            try:
                yield flow.done
            except NetworkInterruptionError as exc:
                src_server.log("transfer.error", lfn, size, detail=str(exc))
                src_server.transfers_failed += 1
                dst_server.transfers_failed += 1
                raise
            if write_to_storage:
                try:
                    dst_site.storage.store(lfn, size, reservation=reservation)
                except StorageFullError as exc:
                    src_server.log("transfer.error", lfn, size, detail=str(exc))
                    src_server.transfers_failed += 1
                    dst_server.transfers_failed += 1
                    raise
            if rls is not None:
                rls.register(dst_site.name, lfn, size, span=tspan)
        finally:
            granted_slots = {id(slot) for _srv, slot in granted}
            for server, slot in slots:
                if id(slot) in granted_slots:
                    server.connections.release(slot)
                elif not slot.triggered:
                    slot.cancel()
                else:
                    # Granted between our interruption and cleanup.
                    server.connections.release(slot)
    except BaseException as exc:
        tspan.finish("error", error=type(exc).__name__)
        raise
    src_server.log("transfer.end", lfn, size)
    src_server.bytes_sent += size
    dst_server.bytes_received += size
    src_server.transfers_ok += 1
    dst_server.transfers_ok += 1
    tspan.finish("ok")
    return size
