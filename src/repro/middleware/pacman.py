"""Pacman packaging and the site installation pipeline (§5.1).

"Procedures for installation, configuration, post-installation testing,
and certification of the basic middleware services were devised and
documented.  The Pacman packaging and configuration tool was used
extensively to facilitate the process."

A :class:`Package` declares dependencies and an optional ``configure``
payload run against the site at install time (this is how the VDT
meta-package attaches services).  :class:`PacmanCache` is the central
package repository hosted at the iGOC.  :func:`install` is a simulation
process: dependency resolution is topological, each package costs
install time, and a per-site misconfiguration probability reproduces the
§6.2 failure class ("jobs often failed due to site configuration
problems") — a misconfigured install *succeeds* but leaves the site
flagged until post-install validation catches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..errors import PackagingError
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.units import MINUTE


@dataclass
class Package:
    """A Pacman package: name, dependencies, install cost, payload."""

    name: str
    version: str = "1.0"
    depends: List[str] = field(default_factory=list)
    #: Simulated wall-clock install duration.
    install_time: float = 5 * MINUTE
    #: Optional hook run against the Site at install time.
    configure: Optional[Callable] = None


class PacmanCache:
    """The central package repository (hosted at the iGOC, §5.4)."""

    def __init__(self) -> None:
        self._packages: Dict[str, Package] = {}
        self.fetches = 0

    def publish(self, package: Package) -> None:
        """Add/replace a package in the cache."""
        self._packages[package.name] = package

    def fetch(self, name: str) -> Package:
        """Retrieve a package; unknown names raise PackagingError."""
        try:
            pkg = self._packages[name]
        except KeyError:
            raise PackagingError(f"package {name!r} not in cache") from None
        self.fetches += 1
        return pkg

    def names(self) -> List[str]:
        """All published package names."""
        return sorted(self._packages)


def resolve(cache: PacmanCache, name: str) -> List[Package]:
    """Topologically ordered transitive dependency closure of ``name``.

    Dependencies come before dependents; cycles raise PackagingError.
    """
    order: List[Package] = []
    seen: Set[str] = set()
    visiting: Set[str] = set()

    def visit(pkg_name: str) -> None:
        if pkg_name in seen:
            return
        if pkg_name in visiting:
            raise PackagingError(f"dependency cycle through {pkg_name!r}")
        visiting.add(pkg_name)
        pkg = cache.fetch(pkg_name)
        for dep in pkg.depends:
            visit(dep)
        visiting.discard(pkg_name)
        seen.add(pkg_name)
        order.append(pkg)

    visit(name)
    return order


def _version_map(site) -> Dict[str, str]:
    """The site's installed-version registry (created on first use).

    ``site.installed_packages`` (a name set) stays the compatibility
    surface; versions ride alongside so re-publishing a package at a new
    version makes :func:`install` upgrade it — the §9 "currently
    undergoing upgrades" operation.
    """
    versions = site.services.get("package-versions")
    if versions is None:
        versions = {name: "?" for name in site.installed_packages}
        site.attach_service("package-versions", versions)
    return versions


def installed_version(site, name: str) -> Optional[str]:
    """The installed version of a package at a site (None if absent)."""
    if name not in site.installed_packages:
        return None
    return _version_map(site).get(name)


def install(
    engine: Engine,
    cache: PacmanCache,
    site,
    name: str,
    rng: Optional[RngRegistry] = None,
    misconfig_probability: float = 0.0,
):
    """Simulation process: install ``name`` (plus deps) onto ``site``.

    Yields install-time timeouts per package; returns the list of
    package names newly installed.  With probability
    ``misconfig_probability`` the site ends up silently misconfigured
    (``site.services["misconfigured"]`` is set) — post-install validation
    (:func:`validate_site`) or the Site Status Catalog discovers it later.
    """
    installed: List[str] = []
    versions = _version_map(site)
    for pkg in resolve(cache, name):
        if versions.get(pkg.name) == pkg.version:
            continue  # already at this version
        yield engine.timeout(pkg.install_time)
        if pkg.configure is not None:
            pkg.configure(site)
        site.installed_packages.add(pkg.name)
        versions[pkg.name] = pkg.version
        installed.append(pkg.name)
    if rng is not None and misconfig_probability > 0:
        if rng.bernoulli(f"pacman.misconfig.{site.name}", misconfig_probability):
            site.attach_service("misconfigured", True)
    return installed


def validate_site(site, required_packages: Iterable[str]) -> List[str]:
    """Post-installation testing (§5.1): returns a list of problems.

    Empty list means the site passes certification.
    """
    problems = []
    for pkg in required_packages:
        if pkg not in site.installed_packages:
            problems.append(f"missing package {pkg}")
    if site.services.get("misconfigured"):
        problems.append("site misconfigured (bad paths/environment)")
    for role in ("gatekeeper", "gridftp", "gris"):
        if role not in site.services:
            problems.append(f"missing service {role}")
    return problems


def certify_site(site, required_packages: Iterable[str]) -> bool:
    """Certification: validation passes and the site is marked online."""
    problems = validate_site(site, required_packages)
    if problems:
        site.status = "degraded"
        return False
    site.status = "online"
    return True


def fix_misconfiguration(site) -> None:
    """Operator remediation: clear the misconfiguration flag."""
    site.services.pop("misconfigured", None)
