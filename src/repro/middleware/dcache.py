"""A dCache-style pooled storage manager (§2).

"Additional services such as Replica Location Service (RLS), Storage
Resource Manager (SRM), and dCache, can be provided by individual VOs if
desired."  The Tier1s ran dCache in front of their tape/disk farms: many
independent disk *pools* behind a single logical door, with pool
selection on write, replica hotspot handling, and pool drain for
maintenance.

:class:`DCachePoolManager` presents the same interface surface as a
:class:`~repro.fabric.storage.StorageElement` for store/lookup/delete —
so the Tier1 archive in a simulation can be swapped from a flat SE to a
pooled one — while adding pool-level behaviours: least-loaded pool
selection, per-pool failure isolation (one dead pool loses only its own
files), and hot-file replication across pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ReplicaNotFoundError, StorageFullError
from ..fabric.storage import FileObject, StorageElement
from ..services import GridService
from ..sim.engine import Engine


class Pool(GridService):
    """One disk pool: a StorageElement plus the service lifecycle.

    Pool outages are first-class service outages: :meth:`fail` /
    :meth:`restore` (via the manager's ``fail_pool``/``restore_pool``)
    land in the downtime ledger, so Tier1 pool availability is
    accounted exactly like a gatekeeper's or GridFTP server's.
    """

    _counter_names = ("reads",)

    def __init__(self, engine: Engine, name: str, capacity: float) -> None:
        super().__init__(role="pool", owner=name, engine=engine)
        self.storage = StorageElement(engine, name, capacity)
        self.reads = 0

    @property
    def name(self) -> str:
        return self.storage.name

    @property
    def online(self) -> bool:
        """Liveness alias kept for the SE-compatible surface."""
        return self.available

    @online.setter
    def online(self, value: bool) -> None:
        if value:
            self.restore(note="online flag set")
        else:
            self.fail("online flag cleared")

    def __repr__(self) -> str:
        state = "up" if self.online else "down"
        return f"<Pool {self.name} {state} {self.storage.used:.2e}/{self.storage.capacity:.2e}>"


class DCachePoolManager:
    """Many pools behind one logical namespace."""

    def __init__(self, engine: Engine, name: str, pool_count: int,
                 pool_capacity: float) -> None:
        if pool_count < 1:
            raise ValueError("need at least one pool")
        self.engine = engine
        self.name = name
        self.pools: List[Pool] = [
            Pool(engine, f"{name}-pool{i:02d}", pool_capacity)
            for i in range(pool_count)
        ]
        #: lfn -> list of pools holding a replica (first = primary).
        self._locations: Dict[str, List[Pool]] = {}

    # -- capacity (SE-compatible surface) -----------------------------------
    @property
    def capacity(self) -> float:
        return sum(p.storage.capacity for p in self.pools)

    @property
    def used(self) -> float:
        return sum(p.storage.used for p in self.pools)

    @property
    def free(self) -> float:
        """Free space on *online* pools (offline capacity is unusable)."""
        return sum(p.storage.free for p in self.pools if p.online)

    def __contains__(self, lfn: str) -> bool:
        return any(p.online for p in self._locations.get(lfn, ()))

    def __len__(self) -> int:
        return len(self._locations)

    # -- pool selection -----------------------------------------------------
    def _select_pool(self, size: float) -> Pool:
        """Least-utilised online pool with room; StorageFullError when
        nothing fits (the cost of pool granularity: free space can be
        fragmented across pools)."""
        candidates = [
            p for p in self.pools
            if p.online and p.storage.free >= size
        ]
        if not candidates:
            raise StorageFullError(
                f"dCache {self.name}: no online pool has {size:.3e} B free"
            )
        return min(candidates, key=lambda p: p.storage.utilisation)

    # -- namespace operations ----------------------------------------------------
    def store(self, lfn: str, size: float, reservation=None) -> FileObject:
        """Write a file into the best pool.

        With a ``reservation`` (issued by :meth:`reserve` against one of
        our pools), the write lands on the reserving pool and draws on
        it; otherwise least-utilised pool selection applies.
        """
        if reservation is not None:
            pool = next(
                (p for p in self.pools if p.storage is reservation.se), None
            )
            if pool is not None:
                obj = pool.storage.store(lfn, size, reservation=reservation)
                holders = self._locations.setdefault(lfn, [])
                if pool not in holders:
                    holders.append(pool)
                return obj
        pool = self._select_pool(size)
        obj = pool.storage.store(lfn, size)
        holders = self._locations.setdefault(lfn, [])
        if pool not in holders:
            holders.append(pool)
        return obj

    def lookup(self, lfn: str) -> Optional[FileObject]:
        """The file object from any online holder, or None."""
        for pool in self._locations.get(lfn, ()):
            if pool.online:
                obj = pool.storage.lookup(lfn)
                if obj is not None:
                    pool.reads += 1
                    return obj
        return None

    def delete(self, lfn: str) -> None:
        """Remove every replica; KeyError when unknown."""
        holders = self._locations.pop(lfn)
        for pool in holders:
            if lfn in pool.storage:
                pool.storage.delete(lfn)

    # -- dCache-specific behaviours -----------------------------------------------
    def replicate(self, lfn: str, copies: int = 2) -> int:
        """Spread a hot file across pools; returns replica count."""
        holders = self._locations.get(lfn)
        if not holders:
            raise ReplicaNotFoundError(lfn)
        primary = next((p for p in holders if p.online), None)
        if primary is None:
            raise ReplicaNotFoundError(f"{lfn}: all holders offline")
        obj = primary.storage.lookup(lfn)
        for pool in sorted(self.pools, key=lambda p: p.storage.utilisation):
            if len([p for p in holders if p.online]) >= copies:
                break
            if pool in holders or not pool.online:
                continue
            if pool.storage.free < obj.size:
                continue
            pool.storage.store(lfn, obj.size)
            holders.append(pool)
        return len([p for p in holders if p.online])

    def fail_pool(self, pool: Pool, cause: str = "pool failure") -> List[str]:
        """Take a pool offline; returns LFNs that lost their *last*
        online replica (the isolation benefit: everything else survives).

        The outage is recorded in the pool's downtime ledger with its
        ``cause``, so injected pool failures are accounted exactly like
        any other service outage.
        """
        pool.fail(cause)
        lost = []
        for lfn, holders in self._locations.items():
            if pool in holders and not any(p.online for p in holders):
                lost.append(lfn)
        return sorted(lost)

    def restore_pool(self, pool: Pool) -> None:
        """Bring a pool back online, closing its ledger outage."""
        pool.restore(note="pool repaired")

    def drain_pool(self, pool: Pool) -> int:
        """Maintenance drain: migrate the pool's files elsewhere, then
        take it offline.  Returns files migrated.  Raises
        StorageFullError if the rest of the farm cannot absorb them."""
        migrated = 0
        for lfn in list(pool.storage._files):
            obj = pool.storage.lookup(lfn)
            holders = self._locations[lfn]
            others = [
                p for p in self.pools
                if p is not pool and p.online and p.storage.free >= obj.size
            ]
            target = next(
                (p for p in others if p not in holders),
                None,
            )
            if target is None and not any(
                p is not pool and p.online and lfn in p.storage for p in holders
            ):
                raise StorageFullError(
                    f"dCache {self.name}: cannot drain {pool.name}, "
                    f"{lfn} has nowhere to go"
                )
            if target is not None:
                target.storage.store(lfn, obj.size)
                holders.append(target)
                migrated += 1
            pool.storage.delete(lfn)
            holders.remove(pool)
        pool.fail("maintenance drain")
        return migrated

    # -- full StorageElement interface compatibility --------------------------
    # (so a Site's .storage can be swapped for a pool manager: probes,
    #  Ganglia, the ops team, and SRM all keep working.)
    @property
    def reserved(self) -> float:
        return sum(p.storage.reserved for p in self.pools)

    @property
    def utilisation(self) -> float:
        cap = self.capacity
        return self.used / cap if cap else 0.0

    @property
    def bytes_written(self) -> float:
        return sum(p.storage.bytes_written for p in self.pools)

    @property
    def bytes_deleted(self) -> float:
        return sum(p.storage.bytes_deleted for p in self.pools)

    @property
    def write_failures(self) -> int:
        return sum(p.storage.write_failures for p in self.pools)

    def files(self) -> List[FileObject]:
        """Every distinct logical file (one entry per LFN)."""
        out = []
        for lfn, holders in self._locations.items():
            for pool in holders:
                obj = pool.storage.lookup(lfn)
                if obj is not None:
                    out.append(obj)
                    break
        return out

    def reserve(self, amount: float):
        """SRM hook: reserve on the pool with the most headroom."""
        candidates = [p for p in self.pools if p.online]
        if not candidates:
            raise StorageFullError(f"dCache {self.name}: no online pools")
        best = max(candidates, key=lambda p: p.storage.free)
        return best.storage.reserve(amount)

    def release_reservation(self, reservation) -> None:
        reservation.se.release_reservation(reservation)

    def purge(self, fraction: float = 1.0) -> float:
        """Operator cleanup across pools (oldest-first per pool)."""
        target = self.used * fraction
        freed = 0.0
        for lfn in list(self._locations):
            if freed >= target:
                break
            holders = self._locations[lfn]
            size = 0.0
            for pool in holders:
                obj = pool.storage.lookup(lfn)
                if obj is not None:
                    size = obj.size
                    break
            self.delete(lfn)
            freed += size
        return freed

    def __repr__(self) -> str:
        online = sum(1 for p in self.pools if p.online)
        return f"<dCache {self.name} {online}/{len(self.pools)} pools {len(self)} files>"
