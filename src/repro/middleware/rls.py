"""Replica Location Service (Giggle-style LRC + RLI), §2/§4.

Applications "record them into RLS" (ATLAS, §4.1) and publish staged
data locations "in RLS so that its location is available to the job"
(LIGO, §4.4).  The architecture follows the Giggle framework the paper
cites: per-site **Local Replica Catalogs** map logical file names to
physical locations at that site; a global **Replica Location Index**
maps LFNs to the LRCs that hold them.  Index updates are soft-state and
slightly stale in the real system; we propagate synchronously and note
the simplification (queries here can never be *more* stale than real
RLS, so failure rates are conservative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..errors import ReplicaNotFoundError, ServiceUnavailableError
from ..services import GridService
from ..sim.engine import Engine


@dataclass(frozen=True)
class Replica:
    """One physical copy of a logical file."""

    lfn: str
    site: str
    pfn: str
    size: float


class LocalReplicaCatalog(GridService):
    """LFN → physical replicas at one site."""

    def __init__(self, site_name: str, engine: Optional[Engine] = None) -> None:
        super().__init__(role="lrc", owner=site_name, engine=engine)
        self.site_name = site_name
        self._replicas: Dict[str, Replica] = {}

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, lfn: str) -> bool:
        return lfn in self._replicas

    def add(self, lfn: str, size: float, pfn: Optional[str] = None) -> Replica:
        """Record a replica of ``lfn`` at this site."""
        replica = Replica(
            lfn=lfn,
            site=self.site_name,
            pfn=pfn or f"gsiftp://{self.site_name}/{lfn.lstrip('/')}",
            size=size,
        )
        self._replicas[lfn] = replica
        return replica

    def remove(self, lfn: str) -> None:
        """Forget a replica if present."""
        self._replicas.pop(lfn, None)

    def lookup(self, lfn: str) -> Replica:
        """The local replica of ``lfn`` (raises ReplicaNotFoundError)."""
        self.require_available(f"lookup of {lfn}")
        try:
            return self._replicas[lfn]
        except KeyError:
            raise ReplicaNotFoundError(f"{lfn} not at {self.site_name}") from None

    def lfns(self) -> List[str]:
        """All logical names catalogued here."""
        return sorted(self._replicas)

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out["replicas"] = float(len(self._replicas))
        return out


class ReplicaLocationIndex(GridService):
    """Global LFN → {site} index over all LRCs."""

    _counter_names = ("registrations", "lookups")

    def __init__(self, engine: Engine) -> None:
        super().__init__(role="rls", owner="grid", engine=engine)
        self._lrcs: Dict[str, LocalReplicaCatalog] = {}
        self._index: Dict[str, Set[str]] = {}
        #: Lifetime registration count (monitoring/Table-1 feeds).
        self.registrations = 0
        self.lookups = 0

    # -- topology -----------------------------------------------------------
    def attach_lrc(self, lrc: LocalReplicaCatalog) -> None:
        """Register a site's LRC with the index (sharing our clock if
        the LRC was built without one)."""
        lrc.adopt_engine(self.engine)
        self._lrcs[lrc.site_name] = lrc

    def lrc(self, site_name: str) -> LocalReplicaCatalog:
        """The LRC for a site (KeyError if not attached)."""
        return self._lrcs[site_name]

    # -- mutation --------------------------------------------------------------
    def register(self, site_name: str, lfn: str, size: float, span=None) -> Replica:
        """Record a new replica at ``site_name`` and index it.

        This is the "registration to RLS" step whose failure counted
        toward ATLAS's 30 % (§6.1) — callers treat exceptions here as a
        job failure.  With ``span`` given the registration appears as a
        (zero-duration) child span in the caller's trace.
        """
        self.require_available(f"registration of {lfn}")
        replica = self._lrcs[site_name].add(lfn, size)
        self._index.setdefault(lfn, set()).add(site_name)
        self.registrations += 1
        if span is not None and span:
            span.child(
                "rls.register", phase="register", lfn=lfn, site=site_name,
            ).finish()
        return replica

    def unregister(self, site_name: str, lfn: str) -> None:
        """Remove a replica from the site LRC and the index."""
        lrc = self._lrcs.get(site_name)
        if lrc is not None:
            lrc.remove(lfn)
        sites = self._index.get(lfn)
        if sites is not None:
            sites.discard(site_name)
            if not sites:
                del self._index[lfn]

    # -- queries ------------------------------------------------------------
    def sites_with(self, lfn: str) -> List[str]:
        """Sites holding a replica of ``lfn`` (empty list if none)."""
        self.require_available(f"lookup of {lfn}")
        self.lookups += 1
        return sorted(self._index.get(lfn, ()))

    def locate(self, lfn: str) -> List[Replica]:
        """All replicas of ``lfn``; raises ReplicaNotFoundError if none."""
        sites = self.sites_with(lfn)
        replicas = []
        for site in sites:
            try:
                replicas.append(self._lrcs[site].lookup(lfn))
            except (ReplicaNotFoundError, ServiceUnavailableError):
                continue
        if not replicas:
            raise ReplicaNotFoundError(lfn)
        return replicas

    def best_replica(self, lfn: str, prefer_sites: Optional[List[str]] = None) -> Replica:
        """One replica, preferring ``prefer_sites`` order if given."""
        replicas = self.locate(lfn)
        if prefer_sites:
            by_site = {r.site: r for r in replicas}
            for site in prefer_sites:
                if site in by_site:
                    return by_site[site]
        return replicas[0]

    def catalogued_lfns(self) -> List[str]:
        """Every logical name with at least one replica."""
        return sorted(self._index)
