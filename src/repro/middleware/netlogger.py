"""NetLogger analysis: the §4.7 instrumented-GridFTP demonstrator.

"NetLogger-instrumented GridFTP was used to monitor the Globus Toolkit
GridFTP server and URL copy program.  NetLogger events were generated at
program start, end, and on errors (the default) and for all significant
I/O requests (by request)."

Every :class:`~repro.middleware.gridftp.GridFTPServer` already emits the
start/end/error event stream; this module is the *analysis* side — the
equivalent of the "Netlogger-Instrumented GridFTP Data Archive" the
paper links: pair up start/end events into transfer lifelines, compute
throughput statistics, and flag anomalies (stalled or failed transfers)
without touching the servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .gridftp import GridFTPServer, NetLoggerEvent


@dataclass(frozen=True)
class TransferLifeline:
    """One reconstructed transfer: start event joined to its outcome."""

    host: str
    lfn: str
    size: float
    started_at: float
    ended_at: float           # -1 while unfinished
    outcome: str              # "ok" | "error" | "in-flight"
    error_detail: str = ""

    @property
    def duration(self) -> float:
        """Wall-clock seconds (-1 while unfinished)."""
        if self.ended_at < 0:
            return -1.0
        return self.ended_at - self.started_at

    @property
    def throughput(self) -> float:
        """Bytes/second achieved (0 for failed/unfinished transfers)."""
        if self.outcome != "ok" or self.duration <= 0:
            return 0.0
        return self.size / self.duration


def reconstruct_lifelines(events: Iterable[NetLoggerEvent]) -> List[TransferLifeline]:
    """Join start events to their end/error events, in order.

    Events for the same LFN are paired FIFO (a re-transfer of the same
    file produces a second lifeline).  Unterminated starts become
    "in-flight" lifelines.
    """
    open_starts: Dict[str, List[NetLoggerEvent]] = {}
    lifelines: List[TransferLifeline] = []
    for event in sorted(events, key=lambda e: e.time):
        if event.event == "transfer.start":
            open_starts.setdefault(event.lfn, []).append(event)
        elif event.event in ("transfer.end", "transfer.error"):
            starts = open_starts.get(event.lfn)
            if not starts:
                continue  # orphan end (truncated log ring)
            start = starts.pop(0)
            lifelines.append(
                TransferLifeline(
                    host=start.host,
                    lfn=start.lfn,
                    size=start.size,
                    started_at=start.time,
                    ended_at=event.time,
                    outcome="ok" if event.event == "transfer.end" else "error",
                    error_detail=event.detail,
                )
            )
    for starts in open_starts.values():
        for start in starts:
            lifelines.append(
                TransferLifeline(
                    host=start.host, lfn=start.lfn, size=start.size,
                    started_at=start.time, ended_at=-1.0, outcome="in-flight",
                )
            )
    lifelines.sort(key=lambda l: l.started_at)
    return lifelines


@dataclass(frozen=True)
class TransferStatistics:
    """Aggregate view over a set of lifelines."""

    transfers: int
    ok: int
    errors: int
    in_flight: int
    bytes_moved: float
    mean_throughput: float
    peak_throughput: float

    @property
    def reliability(self) -> float:
        """ok / terminated — §6.3's 'ran reliably' number."""
        terminated = self.ok + self.errors
        return self.ok / terminated if terminated else 0.0


def compute_statistics(lifelines: Iterable[TransferLifeline]) -> TransferStatistics:
    """Summarise lifelines into the archive's headline statistics."""
    lifelines = list(lifelines)
    ok = [l for l in lifelines if l.outcome == "ok"]
    errors = [l for l in lifelines if l.outcome == "error"]
    in_flight = [l for l in lifelines if l.outcome == "in-flight"]
    throughputs = [l.throughput for l in ok if l.throughput > 0]
    return TransferStatistics(
        transfers=len(lifelines),
        ok=len(ok),
        errors=len(errors),
        in_flight=len(in_flight),
        bytes_moved=sum(l.size for l in ok),
        mean_throughput=sum(throughputs) / len(throughputs) if throughputs else 0.0,
        peak_throughput=max(throughputs) if throughputs else 0.0,
    )


def analyse_server(server: GridFTPServer) -> TransferStatistics:
    """One server's archive page."""
    return compute_statistics(reconstruct_lifelines(server.netlogger))


def grid_archive(servers: Iterable[GridFTPServer]) -> Dict[str, TransferStatistics]:
    """host -> statistics over a whole grid (the central archive view)."""
    return {
        server.site.name: analyse_server(server)
        for server in servers
    }


def lifelines_to_spans(
    lifelines: Iterable[TransferLifeline],
    tracer,
    parent=None,
) -> List:
    """File reconstructed lifelines as spans in a trace tree.

    This is the §4.7 "instead of a separate report" join: NetLogger
    lifelines recovered from a server's event ring become backdated
    ``phase="transfer"`` spans under ``parent`` (the owning job's span),
    or each under its own trace root when ``parent`` is None.  Uses
    :meth:`~repro.trace.JobTracer.record`, so simulated time is
    preserved exactly; returns the created spans in lifeline order.
    """
    spans = []
    for lifeline in lifelines:
        status = {"ok": "ok", "error": "error"}.get(lifeline.outcome, "open")
        spans.append(tracer.record(
            parent,
            f"gridftp {lifeline.lfn}",
            start=lifeline.started_at,
            end=lifeline.ended_at,
            phase="transfer",
            status=status,
            src=lifeline.host,
            bytes=lifeline.size,
            **({"error": lifeline.error_detail} if lifeline.error_detail else {}),
        ))
    return spans


def trace_lifelines(root) -> List[TransferLifeline]:
    """The reverse join: a trace tree's transfer spans as lifelines.

    Lets the existing archive analytics (:func:`compute_statistics`,
    :func:`find_anomalies`) run over one job's trace instead of a
    server's event ring — the per-job NetLogger archive page.
    """
    lifelines = []
    for span in root.walk():
        if span.phase != "transfer":
            continue
        lifelines.append(TransferLifeline(
            host=str(span.attrs.get("src", "")),
            lfn=span.name.replace("gridftp ", "", 1),
            size=float(span.attrs.get("bytes", 0.0)),
            started_at=span.start,
            ended_at=span.end,
            outcome=(
                "in-flight" if span.end < 0
                else ("ok" if span.status == "ok" else "error")
            ),
            error_detail=str(span.attrs.get("error", "")),
        ))
    lifelines.sort(key=lambda l: l.started_at)
    return lifelines


def find_anomalies(
    lifelines: Iterable[TransferLifeline],
    now: float,
    slow_factor: float = 5.0,
    stall_age: float = 3600.0,
) -> List[Tuple[str, TransferLifeline]]:
    """Flag problem transfers: errors, stalls, and slow outliers.

    A transfer is *slow* when its throughput is ``slow_factor`` below
    the population mean; *stalled* when in-flight longer than
    ``stall_age``.
    """
    lifelines = list(lifelines)
    stats = compute_statistics(lifelines)
    flagged: List[Tuple[str, TransferLifeline]] = []
    for lifeline in lifelines:
        if lifeline.outcome == "error":
            flagged.append(("error", lifeline))
        elif lifeline.outcome == "in-flight" and now - lifeline.started_at > stall_age:
            flagged.append(("stalled", lifeline))
        elif (
            lifeline.outcome == "ok"
            and stats.mean_throughput > 0
            and 0 < lifeline.throughput < stats.mean_throughput / slow_factor
        ):
            flagged.append(("slow", lifeline))
    return flagged
