"""The Virtual Data Toolkit meta-package (§2, §5.1).

"We opted for a middleware installation based on the Virtual Data
Toolkit (VDT), which provides services from the Globus Toolkit, Condor,
GriPhyN, and PPDG ... A Pacman package encoded the basic VDT-based
Grid3 installation."

:func:`vdt_package_set` returns the Pacman packages whose ``configure``
payloads wire the actual service objects onto a site — so a site only
becomes usable after :func:`repro.middleware.pacman.install` has run the
``grid3-site`` package against it, exactly like the real deployment
procedure.
"""

from __future__ import annotations

from typing import List

from ..sim.engine import Engine
from ..sim.units import MINUTE
from .gram import attach_gatekeeper
from .gridftp import attach_gridftp
from .gsi import Authenticator, GridMapFile
from .mds import GRIS
from .pacman import Package

#: The package a certified Grid3 site must have (transitively).
GRID3_SITE_PACKAGE = "grid3-site"

#: Packages whose presence post-install validation checks.
REQUIRED_PACKAGES = [
    "globus-gsi",
    "globus-gram",
    "globus-gridftp",
    "mds-gris",
    "ganglia",
    "monalisa-agent",
    "vdt-base",
    GRID3_SITE_PACKAGE,
]


def vdt_package_set(engine: Engine, trusted_cas: List[str]) -> List[Package]:
    """Build the Grid3 VDT package graph.

    Service construction closes over ``engine`` and the trusted CA list;
    the grid-map contents are filled in later by the VOMS refresh
    (:func:`repro.middleware.voms.refresh_site_gridmaps`).
    """

    def cfg_gsi(site) -> None:
        gridmap = site.services.get("gridmap")
        if not isinstance(gridmap, GridMapFile):
            gridmap = GridMapFile()
            site.attach_service("gridmap", gridmap)
        site.attach_service(
            "authenticator", Authenticator(engine, trusted_cas, gridmap)
        )

    def cfg_gram(site) -> None:
        attach_gatekeeper(engine, site, site.service("authenticator"))

    def cfg_gridftp(site) -> None:
        attach_gridftp(engine, site)

    def cfg_gris(site) -> None:
        site.attach_service("gris", GRIS(engine, site))

    def cfg_marker(role):
        def _cfg(site, role=role) -> None:
            # Monitoring daemons are attached by the monitoring layer;
            # the package drops the installed marker it keys off.
            site.attach_service(f"{role}-installed", True)
        return _cfg

    return [
        Package("globus-gsi", depends=[], install_time=3 * MINUTE, configure=cfg_gsi),
        Package("globus-gram", depends=["globus-gsi"], install_time=5 * MINUTE, configure=cfg_gram),
        Package("globus-gridftp", depends=["globus-gsi"], install_time=4 * MINUTE, configure=cfg_gridftp),
        Package("mds-gris", depends=["globus-gsi"], install_time=3 * MINUTE, configure=cfg_gris),
        Package("ganglia", depends=[], install_time=3 * MINUTE, configure=cfg_marker("ganglia")),
        Package("monalisa-agent", depends=[], install_time=3 * MINUTE, configure=cfg_marker("monalisa")),
        Package(
            "vdt-base",
            depends=["globus-gram", "globus-gridftp", "mds-gris"],
            install_time=10 * MINUTE,
        ),
        Package(
            GRID3_SITE_PACKAGE,
            depends=["vdt-base", "ganglia", "monalisa-agent"],
            install_time=8 * MINUTE,
        ),
    ]
