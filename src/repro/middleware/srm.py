"""Storage Resource Manager: the missing service the paper calls for.

§6.2: "storage reservation (e.g., as provided by SRM) would have
prevented various storage-related service failures."  §8 lists "Storage
Services and Data Management" as a lesson: "Additional infrastructure
services are needed to support managed persistent and transient
storage."

:class:`SRMService` wraps a site's storage element with space
reservation and pinning.  It is **off by default** in the Grid3 builder
(matching the deployed system, where only individual VOs ran SRM/dCache)
and switched on for the ablation bench, which shows the disk-full
failure class disappearing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ReservationError, StorageFullError
from ..fabric.storage import Reservation, StorageElement
from ..services import GridService
from ..sim.engine import Engine
from ..sim.units import HOUR


class SRMService(GridService):
    """Space management in front of one storage element."""

    _counter_names = ("reservations_granted", "reservations_denied")

    def __init__(self, engine: Engine, storage: StorageElement,
                 default_lifetime: float = 48 * HOUR) -> None:
        super().__init__(role="srm", owner=storage.name, engine=engine)
        self.storage = storage
        self.default_lifetime = default_lifetime
        #: reservation -> expiry sim-time
        self._leases: Dict[int, float] = {}
        self._live: List[Reservation] = []
        self.reservations_granted = 0
        self.reservations_denied = 0

    def prepare_to_put(self, nbytes: float, lifetime: Optional[float] = None) -> Reservation:
        """Reserve space for an upcoming write.

        Expired leases are reaped first, so abandoned reservations (jobs
        that died mid-flight) cannot permanently strand space.  Raises
        :class:`ReservationError` when space genuinely isn't there — the
        *scheduling-time* signal that replaces the §6.2 mid-job crash.
        """
        self.require_available("space reservation")
        self.reap_expired()
        try:
            reservation = self.storage.reserve(nbytes)
        except StorageFullError as exc:
            self.reservations_denied += 1
            raise ReservationError(str(exc)) from exc
        self.reservations_granted += 1
        self._live.append(reservation)
        self._leases[id(reservation)] = self.engine.now + (
            lifetime if lifetime is not None else self.default_lifetime
        )
        return reservation

    def put_done(self, reservation: Reservation) -> None:
        """Signal write completion; unused reserve returns to the pool.

        Idempotent at this layer: a job whose lease already expired (the
        reaper released it) may still call put_done in its cleanup path
        — that is normal, not a double-release bug, so the strict
        :meth:`StorageElement.release_reservation` is only invoked for
        reservations still live.
        """
        if not reservation.released:
            self.storage.release_reservation(reservation)
        self._leases.pop(id(reservation), None)
        self._live = [r for r in self._live if r is not reservation]

    def abort(self, reservation: Reservation) -> None:
        """Abandon a reservation outright (failed transfer)."""
        self.put_done(reservation)

    def reap_expired(self) -> int:
        """Release reservations whose lease lapsed; returns count reaped."""
        now = self.engine.now
        reaped = 0
        for reservation in list(self._live):
            expiry = self._leases.get(id(reservation), 0.0)
            if now > expiry:
                self.put_done(reservation)
                reaped += 1
        return reaped

    @property
    def reserved_bytes(self) -> float:
        """Space currently held by unexpired reservations."""
        return sum(r.available for r in self._live)

    def __repr__(self) -> str:
        return f"<SRM over {self.storage.name}: {len(self._live)} reservations>"


def attach_srm(engine: Engine, site, **kwargs) -> SRMService:
    """Create an SRM over the site's SE and register it as ``srm``."""
    srm = SRMService(engine, site.storage, **kwargs)
    site.attach_service("srm", srm)
    return srm
