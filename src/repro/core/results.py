"""The shared result-record convention for every ops query surface.

The §8 lessons ask for "APIs ... providing direct information without
the necessity of parsing log files".  Early revisions of this repo
answered each query with an ad-hoc ``dict``, so every caller had to
know a different shape.  :class:`ReportRecord` is the one convention
all query surfaces now share:

* results are **frozen dataclasses** — named, typed, hashable fields;
* ``as_dict()`` returns the plain-dict view (nested records included);
* ``to_json()`` serialises with **sorted keys**, so equal records
  produce byte-identical JSON (diffable, cacheable);
* dict-style access (``row["field"]``, ``"field" in row``, ``.keys()``)
  still works as a *thin deprecated alias* for the old return shapes.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from typing import Any, Dict, Iterator, Sequence, Tuple


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for field values (inf -> string)."""
    if isinstance(value, float) and (value != value or value in (float("inf"), -float("inf"))):
        return repr(value)
    if isinstance(value, BaseException):
        return type(value).__name__
    return value


class ReportRecord:
    """Mixin base for frozen result dataclasses.

    Subclasses are ``@dataclass(frozen=True)``; this base supplies the
    uniform ``as_dict``/``to_json`` surface plus deprecated dict-style
    access so pre-redesign callers keep working.
    """

    def as_dict(self) -> Dict[str, Any]:
        """The record as a plain dict (nested records become dicts)."""
        return dataclasses.asdict(self)  # type: ignore[call-overload]

    def to_json(self) -> str:
        """Sorted-key JSON — equal records serialise identically."""
        return json.dumps(self.as_dict(), sort_keys=True, default=_jsonable)

    # -- deprecated dict-shape aliases ----------------------------------
    def _warn(self, how: str) -> None:
        warnings.warn(
            f"{how} on {type(self).__name__} is deprecated; use attribute "
            "access or .as_dict()",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str) -> Any:
        self._warn(f"dict-style access [{key!r}]")
        return self.as_dict()[key]

    def __contains__(self, key: str) -> bool:
        self._warn(f"membership test {key!r} in record")
        return key in self.as_dict()

    def __iter__(self) -> Iterator[str]:
        self._warn("iteration")
        return iter(self.as_dict())

    def keys(self):
        """Deprecated: the old dict shape's keys."""
        self._warn(".keys()")
        return self.as_dict().keys()

    def items(self):
        """Deprecated: the old dict shape's items."""
        self._warn(".items()")
        return self.as_dict().items()

    def get(self, key: str, default: Any = None) -> Any:
        """Deprecated: the old dict shape's .get()."""
        self._warn(f".get({key!r})")
        return self.as_dict().get(key, default)


@dataclasses.dataclass(frozen=True)
class ReportPage(ReportRecord):
    """One page of a large report: a slice of rows plus slice/total
    bookkeeping, so consumers (the HTTP service, CLI tables) can walk a
    report window by window without the producer ever re-serializing
    the whole tree.

    ``rows`` holds the page's records — :class:`ReportRecord` instances
    or plain dicts (the field is named ``rows`` because the deprecated
    dict-alias surface already claims ``.items()``); ``as_dict()`` emits
    the wire shape::

        {"items": [...], "total": N, "slice": {"offset": o, "limit": l,
         "returned": len(items)}}

    Build pages with :func:`paginate`, which slices *first* and only
    then converts, so serving page 3 of a 100k-row trace report touches
    ``limit`` rows, not 100k.
    """

    rows: Tuple[Any, ...]
    total: int
    offset: int
    limit: int

    def as_dict(self) -> Dict[str, Any]:
        rows = [
            row.as_dict() if isinstance(row, ReportRecord) else row
            for row in self.rows
        ]
        return {
            "items": rows,
            "total": self.total,
            "slice": {
                "offset": self.offset,
                "limit": self.limit,
                "returned": len(rows),
            },
        }


def paginate(rows: Sequence[Any], offset: int = 0, limit: int = 500) -> ReportPage:
    """Slice ``rows`` into a :class:`ReportPage`.

    ``offset`` past the end yields an empty page (``total`` still tells
    the caller where the end is); a non-positive ``limit`` or negative
    ``offset`` raises ``ValueError`` — the HTTP layer maps that to 400.
    """
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    return ReportPage(
        rows=tuple(rows[offset:offset + limit]),
        total=len(rows),
        offset=offset,
        limit=limit,
    )
