"""The Grid3 core: job model and the grid builder/orchestrator."""

from .job import STAGING_LOAD_FACTOR, Job, JobSpec, JobState
from .runner import Grid3Runner

__all__ = ["Grid3Runner", "Job", "JobSpec", "JobState", "STAGING_LOAD_FACTOR"]
