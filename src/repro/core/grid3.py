"""The Grid3 system builder: wires every subsystem into a runnable grid.

This is the reproduction's equivalent of the Grid2003 deployment
procedure (§5): build the fabric from the site catalog, stand up the
VOMS servers and the Pacman cache, install the VDT package onto every
site (through the real install pipeline, misconfigurations included),
generate grid-maps, build the MDS hierarchy, attach schedulers running
the Grid3 job wrapper, start the monitoring stack and the iGOC
operations loop, arm the failure injector, and create the per-VO
Condor-G submit hosts the applications use.

Typical use::

    from repro import Grid3, Grid3Config

    grid = Grid3(Grid3Config(scale=50, duration_days=30))
    grid.deploy()              # §5.1: install + certify all sites
    grid.start_applications()  # §4: the seven demonstrator classes
    grid.run()                 # simulate the observation window
    print(grid.milestones().render())
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from ..apps import (
    ATLASApplication,
    AppContext,
    BTeVApplication,
    CMSApplication,
    ExerciserApplication,
    GridFTPDemoApplication,
    IVDGLApplication,
    LIGOApplication,
    OBSERVATION_DAYS,
    SDSSApplication,
)
from ..failures import FailureInjector, FailureProfile, FailureSchedule
from ..fabric import (
    GRID3_SITES,
    GRID3_VOS,
    VO_HOME_SITE,
    Network,
    SiteSpec,
    build_sites,
    scaled_catalog,
    typical_cpus,
)
from ..middleware import (
    GRID3_SITE_PACKAGE,
    REQUIRED_PACKAGES,
    CertificateAuthority,
    PacmanCache,
    ReplicaLocationIndex,
    VOMSServer,
    attach_srm,
    build_mds_hierarchy,
    certify_site,
    install,
    refresh_site_gridmaps,
    vdt_package_set,
)
from ..middleware.rls import LocalReplicaCatalog
from ..monitoring import (
    ACDCJobMonitor,
    GangliaAgent,
    GangliaWeb,
    MDViewer,
    MonALISAAgent,
    MonALISARepository,
    ServiceHealthAgent,
    SiteStatusCatalog,
    TransferLedger,
)
from ..ops import IGOC, MilestonesTracker, OperationsTeam
from ..scheduling import CondorG, DAGMan, RandomSelector, SiteSelector, add_local_load
from ..scheduling.flavors import make_scheduler
from ..sim import DAY, Engine, RngRegistry, SimCalendar, bytes_to_tb
from .runner import Grid3Runner

#: Exerciser probe footprint (Table 1: the exerciser used 14 sites).
EXERCISER_SITES = [
    "BNL_ATLAS", "FNAL_CMS", "CalTech_PG", "UFL_Grid3", "IU_Grid3",
    "UCSD_PG", "UC_Grid3", "ANL_HEP", "BU_ATLAS", "JHU_SDSS",
    "UB_ACDC", "UM_ATLAS", "UTA_DPCC", "UWMadison_CS",
]

#: All application classes, keyed by the names Grid3Config.apps uses.
APP_CLASSES = {
    "usatlas": ATLASApplication,
    "uscms": CMSApplication,
    "sdss": SDSSApplication,
    "ligo": LIGOApplication,
    "btev": BTeVApplication,
    "ivdgl": IVDGLApplication,
    "exerciser": ExerciserApplication,
    "gridftp-demo": GridFTPDemoApplication,
}


@dataclass
class Grid3Config:
    """Knobs for one Grid3 simulation run."""

    seed: int = 42
    #: Divides CPU counts and workload sizes symmetrically; 1.0 is the
    #: full 2800-CPU / 291k-job system, 50 is a laptop-friendly run.
    scale: float = 50.0
    duration_days: float = OBSERVATION_DAYS
    #: §6.2/§8 ablation: storage reservation via SRM.
    use_srm: bool = False
    #: "smart" = the §6.4 requirement-driven selector; "random" = the
    #: ablation baseline ignoring requirements.
    matchmaking: str = "smart"
    #: A single profile or a time-varying FailureSchedule.
    failures: object = field(default_factory=FailureProfile)
    #: Probability a site install leaves it misconfigured (§6.2).
    misconfig_probability: float = 0.15
    #: Run the iGOC operations/repair loop.
    ops_team: bool = True
    #: Shared-site background local load (§7's non-dedicated 60 %).
    local_load: bool = True
    #: Which applications to run; None = all eight demonstrators.
    apps: Optional[List[str]] = None
    ligo_test_mode: bool = True
    #: Per-site Condor-G throttle (scaled).
    per_site_throttle: int = 100
    #: Run the Tier1 archives on dCache pool managers instead of flat
    #: storage elements (§2: "dCache can be provided by individual VOs").
    tier1_dcache: bool = False
    tier1_dcache_pools: int = 8
    #: §8 "Storage Services and Data Management": run the managed data
    #: subsystem (replica selection, transfer queueing, StorageAgent
    #: disk-pressure control).  Off by default — the deployed system had
    #: none — and isolated on data.* RNG streams when on.
    data_management: bool = False
    #: StorageAgent watermarks: evict above high, down to low.
    data_high_watermark: float = 0.85
    data_low_watermark: float = 0.70
    #: Divides every SE capacity (1.0 = the catalog's real disks).
    #: Raising it manufactures the §6.2 disk-pressure regime at bench
    #: scales where the full-size disks would never fill.
    disk_scale: float = 1.0
    #: End-to-end job tracing (the §8 cross-layer troubleshooting view).
    #: Off by default: an untraced same-seed run is byte-identical to a
    #: pre-tracing build; on, it adds no events and draws no RNG.
    tracing: bool = False
    #: Retained whole traces before FIFO eviction (bounded SpanStore).
    trace_max_traces: int = 20_000
    #: §5/§7 multi-VO scheduling: enforce per-site usage policies
    #: (admission control + per-VO share slots) and fold decayed-usage
    #: fair-share priorities into matchmaking.  Off by default — a
    #: same-seed run with it off is byte-identical to a pre-fair-share
    #: build; policies are still *published* on every site either way.
    fair_share: bool = False
    #: Which reconstructed policy set the sites publish: "paper" (the
    #: §5/§7 reconstruction) or "open" (everything-goes ablation).
    site_policies: str = "paper"
    #: Fair-share usage half-life (hours): yesterday's monopolisation
    #: counts half as much as today's.
    fair_share_half_life_hours: float = 24.0
    #: VO -> target share (normalised; None = equal shares).
    fair_share_targets: Optional[Dict[str, float]] = None
    #: Synthetic fabric (the scale-out path): a site count, or a dict of
    #: :func:`repro.fabric.synthesize` kwargs (``{"sites": 500, ...}``).
    #: None = the 27-site paper catalog scaled by ``scale``.  When set,
    #: site CPUs come from the generator (``scale`` still divides
    #: workload sizes), the WAN is wired tiered, and the exerciser
    #: probes the anchor + largest sites.  The generator defaults its
    #: ``seed`` to this config's seed.
    fabric: object = None
    #: iGOC alerting (the §5.2/§5.4 telemetry -> ticket loop): run the
    #: declarative AlertRule set against the service-health estate; a
    #: firing rule opens an iGOC trouble ticket, a clearing one
    #: resolves it.  Off by default — a same-seed run with it off is
    #: byte-identical to a pre-alerting build (the monitor adds
    #: periodic events when on).
    alerts: bool = False
    #: Alert evaluation cadence in hours (sim time).
    alert_interval_hours: float = 1.0
    #: Global monitoring memory budget (MB).  When set, one
    #: :class:`~repro.monitoring.MemoryGovernor` spans every MetricStore
    #: in the estate: when the live sample pool would exceed the budget,
    #: the oldest time windows are evicted into streaming aggregates
    #: (``window_stats`` keeps answering over them).  None = unbounded,
    #: byte-identical to the pre-governor build.
    metrics_memory_budget_mb: Optional[float] = None

    def validate(self) -> "Grid3Config":
        """Reject unknown knobs and contradictory settings.

        Called by :class:`Grid3` on construction; raises
        :class:`~repro.errors.ConfigurationError` with an actionable
        message rather than letting a typo silently no-op.
        """
        from ..errors import ConfigurationError
        from ..scheduling.policy import POLICY_SETS

        def _suggest(value: str, allowed) -> str:
            hit = difflib.get_close_matches(str(value), [str(a) for a in allowed], n=1)
            return f"; did you mean {hit[0]!r}?" if hit else ""

        known = {f.name for f in fields(self)}
        for name in vars(self):
            if name not in known:
                raise ConfigurationError(
                    f"unknown Grid3Config knob {name!r}"
                    f"{_suggest(name, sorted(known))}"
                )
        for knob, allowed in (
            ("matchmaking", ("smart", "random")),
            ("site_policies", tuple(sorted(POLICY_SETS))),
        ):
            value = getattr(self, knob)
            if value not in allowed:
                raise ConfigurationError(
                    f"{knob}={value!r} is not one of {allowed}"
                    f"{_suggest(value, allowed)}"
                )
        for knob in ("scale", "duration_days", "disk_scale",
                     "fair_share_half_life_hours", "alert_interval_hours"):
            value = getattr(self, knob)
            if not value > 0:
                raise ConfigurationError(f"{knob} must be positive, got {value!r}")
        for knob in ("per_site_throttle", "trace_max_traces",
                     "tier1_dcache_pools"):
            value = getattr(self, knob)
            if value < 1:
                raise ConfigurationError(f"{knob} must be >= 1, got {value!r}")
        if not 0.0 <= self.misconfig_probability <= 1.0:
            raise ConfigurationError(
                "misconfig_probability is a probability; got "
                f"{self.misconfig_probability!r} (want 0.0-1.0)"
            )
        for knob in ("data_high_watermark", "data_low_watermark"):
            value = getattr(self, knob)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(
                    f"{knob} is a disk-fill fraction; got {value!r} "
                    "(want within (0.0, 1.0])"
                )
        if self.data_low_watermark > self.data_high_watermark:
            raise ConfigurationError(
                f"data_low_watermark={self.data_low_watermark} exceeds "
                f"data_high_watermark={self.data_high_watermark}: the "
                "StorageAgent evicts from the high watermark *down to* "
                "the low one, so low must be <= high"
            )
        if self.fair_share_targets:
            bad = {vo: s for vo, s in self.fair_share_targets.items() if not s > 0}
            if bad:
                raise ConfigurationError(
                    f"fair_share_targets shares must be positive: {bad!r}"
                )
        if self.apps:
            unknown = [a for a in self.apps if a not in APP_CLASSES]
            if unknown:
                raise ConfigurationError(
                    f"unknown app(s) {unknown!r}"
                    f"{_suggest(unknown[0], sorted(APP_CLASSES))}"
                )
        if self.fabric is not None:
            import inspect

            from ..fabric.synthesize import synthesize
            if isinstance(self.fabric, bool) or not isinstance(self.fabric, (int, dict)):
                raise ConfigurationError(
                    f"fabric must be a site count or a dict of "
                    f"synthesize() kwargs, got {self.fabric!r}"
                )
            if isinstance(self.fabric, int) and self.fabric < 1:
                raise ConfigurationError(
                    f"fabric site count must be >= 1, got {self.fabric!r}"
                )
            if isinstance(self.fabric, dict):
                allowed = set(inspect.signature(synthesize).parameters)
                unknown = sorted(set(self.fabric) - allowed)
                if unknown:
                    raise ConfigurationError(
                        f"unknown fabric knob(s) {unknown!r}"
                        f"{_suggest(unknown[0], sorted(allowed))}"
                    )
        if self.metrics_memory_budget_mb is not None:
            if not self.metrics_memory_budget_mb > 0:
                raise ConfigurationError(
                    "metrics_memory_budget_mb must be positive, got "
                    f"{self.metrics_memory_budget_mb!r}"
                )
        return self

    def canonical_digest(self) -> str:
        """A stable content hash of this (validated) configuration.

        Two configs describing the same run — regardless of dict
        construction order or which defaults were spelled out — produce
        the same digest, so it serves as a result-cache key: a million
        identical what-if submissions collapse onto one simulation.

        Only plain data survives canonicalisation (None, bool, int,
        float, str, dict/list/tuple/set of the same, plus dataclasses
        such as :class:`FailureProfile` and
        :class:`~repro.failures.FailureSchedule`).  A knob holding
        anything else — a lambda, an open handle, a live object — raises
        :class:`~repro.errors.ConfigurationError` naming the knob, since
        such a value can neither key a cache nor cross a process
        boundary to a worker.
        """
        from ..errors import ConfigurationError

        def canon(value: object, path: str) -> object:
            if value is None or isinstance(value, (bool, int, str)):
                return value
            if isinstance(value, float):
                return value
            if isinstance(value, dict):
                bad = [k for k in value if not isinstance(k, str)]
                if bad:
                    raise ConfigurationError(
                        f"cannot digest {path}: non-string dict key(s) "
                        f"{bad!r}"
                    )
                return {k: canon(v, f"{path}[{k!r}]") for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [canon(v, f"{path}[{i}]") for i, v in enumerate(value)]
            if isinstance(value, (set, frozenset)):
                return sorted(
                    (canon(v, f"{path}{{...}}") for v in value),
                    key=repr,
                )
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                record = {
                    f.name: canon(getattr(value, f.name), f"{path}.{f.name}")
                    for f in dataclasses.fields(value)
                }
                record["__class__"] = type(value).__name__
                return record
            if isinstance(value, FailureSchedule):
                return {
                    "__class__": "FailureSchedule",
                    "eras": [
                        [switch, canon(profile, f"{path}.eras")]
                        for switch, profile in value.eras
                    ],
                }
            raise ConfigurationError(
                f"cannot digest Grid3Config knob {path} = {value!r} "
                f"({type(value).__name__}): cache keys need plain data "
                "(None/bool/int/float/str, containers of those, or "
                "dataclasses like FailureProfile)"
            )

        self.validate()
        payload = {
            f.name: canon(getattr(self, f.name), f.name) for f in fields(self)
        }
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class Grid3:
    """A fully wired Grid3 instance."""

    def __init__(self, config: Optional[Grid3Config] = None) -> None:
        from .job import reset_job_ids
        reset_job_ids()
        self.config = (config or Grid3Config()).validate()
        cfg = self.config
        self.engine = Engine()
        self.rng = RngRegistry(cfg.seed)
        self.calendar = SimCalendar()
        self.network = Network(self.engine)
        if cfg.fabric is not None:
            # Synthetic fabric: the generator is a pure function of its
            # kwargs with its own RNG, so building it perturbs no
            # simulation stream.
            from ..fabric.synthesize import site_regions, synthesize
            fabric_kwargs = (
                dict(cfg.fabric) if isinstance(cfg.fabric, dict)
                else {"sites": int(cfg.fabric)}
            )
            fabric_kwargs.setdefault("seed", cfg.seed)
            self.catalog: List[SiteSpec] = synthesize(**fabric_kwargs)
            self._fabric_regions: Optional[Dict[str, str]] = site_regions(self.catalog)
        else:
            self.catalog = scaled_catalog(cfg.scale)
            self._fabric_regions = None
        self.sites = build_sites(self.engine, self.network, self.catalog)
        # Publish the reconstructed usage policies on every site (§5).
        # Publication is passive — no RNG, no events — so it leaves
        # same-seed runs byte-identical; enforcement is gated below on
        # cfg.fair_share.  Synthetic fabrics auto-generate their policy
        # set (the generated VO allow-lists) from the same spec rules.
        from ..scheduling.policy import POLICY_SETS
        if self._fabric_regions is not None and cfg.site_policies == "paper":
            from ..fabric.synthesize import synthetic_policies
            self.usage_policies = synthetic_policies(
                self.catalog, GRID3_VOS, seed=cfg.seed
            )
        else:
            self.usage_policies = POLICY_SETS[cfg.site_policies](self.catalog, GRID3_VOS)
        for site in self.sites.values():
            site.usage_policy = self.usage_policies.get(site.name)
        # Regional WAN trunks (OC-48-class; uncongested at Grid3 demand,
        # per §6.3's edge-dominated problem reports).  Synthetic fabrics
        # use the tiered hub-and-spoke backbone (O(regions) trunks).
        from ..fabric.topology import wire_backbone
        if self._fabric_regions is not None:
            wire_backbone(
                self.network, self.sites.values(),
                regions=self._fabric_regions, tiered=True,
            )
        else:
            wire_backbone(self.network, self.sites.values())
        if cfg.disk_scale != 1.0:
            # scaled_catalog divides CPUs but leaves disks full-size; the
            # disk-pressure scenarios shrink them here so the §6.2 regime
            # is reachable in short windows.
            for site in self.sites.values():
                site.storage.capacity = site.storage.capacity / cfg.disk_scale
        if cfg.tier1_dcache:
            # §2: the Tier1 VOs ran pooled storage behind their doors.
            from ..middleware.dcache import DCachePoolManager
            for site in self.sites.values():
                if site.tier1:
                    capacity = site.storage.capacity
                    site.storage = DCachePoolManager(
                        self.engine, f"{site.name}-dcache",
                        pool_count=cfg.tier1_dcache_pools,
                        pool_capacity=capacity / cfg.tier1_dcache_pools,
                    )
        self.duration = cfg.duration_days * DAY

        # Security + VO management (§5.3).
        self.ca = CertificateAuthority("doegrids", self.engine)
        self.voms: Dict[str, VOMSServer] = {
            vo: VOMSServer(self.engine, vo, self.ca) for vo in GRID3_VOS
        }

        # Data management.
        self.rls = ReplicaLocationIndex(self.engine)
        for name in self.sites:
            self.rls.attach_lrc(LocalReplicaCatalog(name, engine=self.engine))
        self.ledger = TransferLedger()

        # Monitoring memory budget: one governor spans every MetricStore
        # in the estate (None = unbounded, the pre-governor behaviour).
        if cfg.metrics_memory_budget_mb is not None:
            from ..monitoring import MemoryGovernor
            self.governor: Optional[object] = MemoryGovernor(
                cfg.metrics_memory_budget_mb
            )
        else:
            self.governor = None

        # End-to-end tracing (§4.7/§8 troubleshooting): a JobTracer when
        # on, the shared no-op otherwise — call sites never branch.
        from ..trace import NULL_TRACER, JobTracer
        self.tracer = (
            JobTracer(self.engine, max_traces=cfg.trace_max_traces)
            if cfg.tracing else NULL_TRACER
        )
        if self.tracer.enabled:
            self._govern(self.tracer.metrics)

        # Central services at the iGOC (§5.4).
        self.igoc = IGOC(self.engine)
        self.pacman_cache = PacmanCache()
        for pkg in vdt_package_set(self.engine, ["doegrids"]):
            self.pacman_cache.publish(pkg)
        self.igoc.host("pacman-cache", self.pacman_cache)

        # Managed data subsystem (§8 lesson; opt-in).  Built before the
        # runner so stage-in goes through the replica selector.
        self.data = None
        if cfg.data_management:
            from ..data import DataManager
            self.data = DataManager(
                self.engine, self.sites, self.rls, self.rng,
                ledger=self.ledger,
                high_watermark=cfg.data_high_watermark,
                low_watermark=cfg.data_low_watermark,
                tracer=self.tracer,
            )
            self._govern(self.data.store)

        self.runner = Grid3Runner(
            self.sites, self.rls, self.rng,
            use_srm=cfg.use_srm, ledger=self.ledger,
            replica_selector=self.data.selector if self.data else None,
        )

        # Filled in by deploy().
        self.mds = None
        self.selector = None
        self.condorg: Dict[str, CondorG] = {}
        self.dagman: Dict[str, DAGMan] = {}
        self.apps: Dict[str, object] = {}
        self.monitors: Dict[str, object] = {}
        self.injector: Optional[FailureInjector] = None
        self.ops_team: Optional[OperationsTeam] = None
        #: iGOC alert loop (deploy() builds it when ``alerts`` is on).
        self.alert_monitor = None
        #: Fair-share layer (deploy() builds these when fair_share is on).
        self.fairshare = None
        self.policy_engine = None
        self._deployed = False
        self._apps_started = False

    def _govern(self, store: object) -> None:
        """Put a MetricStore under the global memory budget (no-op when
        no budget is configured or the object is not a MetricStore)."""
        if self.governor is None:
            return
        from ..monitoring import MetricStore
        if isinstance(store, MetricStore):
            self.governor.register(store)

    def exerciser_sites(self) -> List[str]:
        """The exerciser probe footprint.  Paper catalog: the Table 1
        14-site roster.  Synthetic fabric: the anchors plus the largest
        generated sites, 14 total (the catalog is emitted largest-first,
        anchors leading)."""
        if self.config.fabric is None:
            return EXERCISER_SITES
        return [s.name for s in self.catalog[:len(EXERCISER_SITES)]]

    # -- deployment (§5.1) ------------------------------------------------
    def deploy(self) -> None:
        """Install, configure, certify, and start central services."""
        if self._deployed:
            return
        cfg = self.config
        sites = list(self.sites.values())

        # Pacman-install the Grid3 VDT stack onto every site.
        installs = [
            self.engine.process(
                install(
                    self.engine, self.pacman_cache, site, GRID3_SITE_PACKAGE,
                    rng=self.rng, misconfig_probability=cfg.misconfig_probability,
                ),
                name=f"install-{site.name}",
            )
            for site in sites
        ]
        while any(p.is_alive for p in installs):
            if not self.engine.step():  # pragma: no cover - defensive
                raise RuntimeError("site installation deadlocked")

        # Register users and generate grid-maps (§5.3).
        self._register_users()
        refresh_site_gridmaps(sites, list(self.voms.values()), now=self.engine.now)
        # The authenticators must see the refreshed gridmap objects.
        for site in sites:
            site.service("authenticator").gridmap = site.service("gridmap")

        # Information services (§5.1/5.2).
        self.mds = build_mds_hierarchy(self.engine, sites, GRID3_VOS)
        self.igoc.host("top-giis", self.mds["top"])
        # MDS registrations are soft-state; the real sites re-register on
        # a cron.  Without renewal the GIIS drains after one TTL and the
        # matchmaker goes blind.
        self.engine.process(self._mds_renewal_loop(), name="mds-renewal")

        # Batch systems running the Grid3 wrapper.
        for site in sites:
            lrm = make_scheduler(self.engine, site, self.runner)
            site.attach_service("lrm", lrm)
            gatekeeper = site.service("gatekeeper")
            gatekeeper.lrm = lrm
            lrm.on_job_complete.append(gatekeeper.job_finished)

        # Optional SRM (the §8 lesson, off in the deployed system).
        if cfg.use_srm:
            for site in sites:
                attach_srm(self.engine, site)

        # Certification (§5.1) — misconfigured sites still come online
        # (their problem is latent, caught later by probes/failures).
        for site in sites:
            certify_site(site, [p for p in REQUIRED_PACKAGES])
            if site.status == "degraded" and not site.services.get("misconfigured"):
                site.status = "online"
            site.status = "online"

        # Monitoring stack (Fig. 1).  Hourly cadence: long windows (183
        # days x 27 sites) make the real 5-minute cadence pointlessly
        # expensive for daily-binned figures.
        from ..sim.units import HOUR as _HOUR
        ganglia_web = GangliaWeb()
        repository = MonALISARepository(bin_width=_HOUR)
        for site in sites:
            agent = GangliaAgent(self.engine, site, ganglia_web, interval=_HOUR)
            self._govern(agent.local_store)
            MonALISAAgent(self.engine, site, repository, GRID3_VOS, interval=_HOUR)
        acdc = ACDCJobMonitor(self.engine, sites)
        status_catalog = SiteStatusCatalog(self.engine, sites)
        service_health = ServiceHealthAgent(
            self.engine, sites, interval=_HOUR,
            extra_services=self._central_services(),
        )
        self._govern(ganglia_web.store)
        self._govern(service_health.store)
        self.monitors = {
            "ganglia": ganglia_web,
            "monalisa": repository,
            "acdc": acdc,
            "status": status_catalog,
            "service-health": service_health,
        }
        if self.data is not None:
            # The StorageAgent's data.* metric store joins the iGOC
            # monitoring estate alongside the rest of Fig. 1.
            self.monitors["data"] = self.data.store
        if self.tracer.enabled:
            # trace.* per-VO phase/makespan series, same query surface
            # as every other MetricStore in the estate.
            self.monitors["trace"] = self.tracer.metrics
        for name, service in self.monitors.items():
            self.igoc.host(name, service)

        # Background local load at shared facilities (§7).
        if cfg.local_load:
            specs_by_name = {s.name: s for s in self.catalog}
            add_local_load(self.engine, sites, specs_by_name, self.rng)

        # Operations (§5.4) and failures (§6).
        if cfg.ops_team:
            self.ops_team = OperationsTeam(self.engine, self.igoc, sites, self.rng)
        self.injector = FailureInjector(self.engine, sites, self.rng, cfg.failures)

        # Alerting/SLO loop (§5.2/§5.4): declarative rules over the
        # monitoring estate; firing opens iGOC tickets, clearing
        # resolves them.  Gated — the monitor's periodic process adds
        # events, so default runs stay byte-identical with it off.
        if cfg.alerts:
            from ..ops.alerts import AlertMonitor, default_rules
            from ..sim.units import HOUR as _AH
            self.alert_monitor = AlertMonitor(
                self.engine, self.igoc, default_rules(),
                stores={"service-health": service_health.store},
                interval=cfg.alert_interval_hours * _AH,
            )

        # Per-VO submit infrastructure.
        throttle = max(2, int(round(cfg.per_site_throttle / max(1.0, cfg.scale / 50))))
        if cfg.fair_share:
            # Fair-share layer (§5/§7): one shared ledger + policy
            # engine across all VOs' submit hosts, publishing sched.*
            # metrics into the iGOC estate.
            from ..monitoring.core import MetricStore
            from ..scheduling.fairshare import FairShareLedger
            from ..scheduling.policy import PolicyEngine
            from ..sim.units import HOUR as _H
            sched_store = MetricStore(max_samples=200_000)
            self._govern(sched_store)
            self.fairshare = FairShareLedger(
                GRID3_VOS,
                targets=cfg.fair_share_targets,
                half_life=cfg.fair_share_half_life_hours * _H,
                store=sched_store,
            )
            self.policy_engine = PolicyEngine(
                self.engine, self.usage_policies,
                slots_per_site=throttle, store=sched_store,
            )
            self.monitors["sched"] = sched_store
            self.igoc.host("sched", sched_store)
        if cfg.matchmaking == "random":
            self.selector = RandomSelector(self.mds["top"], self.rng)
        else:
            self.selector = SiteSelector(
                self.mds["top"], self.rng,
                fairshare=self.fairshare,
                clock=(lambda: self.engine.now) if self.fairshare else None,
            )
        for vo in GRID3_VOS:
            condorg = CondorG(
                self.engine, f"{vo}-submit", self.sites,
                proxy_provider=self._proxy_provider(vo),
                selector=self.selector,
                per_site_throttle=throttle,
                tracer=self.tracer,
                policy=self.policy_engine,
                fairshare=self.fairshare,
            )
            self.condorg[vo] = condorg
            self.dagman[vo] = DAGMan(self.engine, condorg, tracer=self.tracer)
        self._deployed = True

    def _mds_renewal_loop(self):
        from ..middleware import renew_registrations
        from ..sim.units import MINUTE
        while True:
            renew_registrations(self.mds)
            yield self.engine.timeout(15 * MINUTE)

    def _register_users(self) -> None:
        """Populate the VOMS servers (§7: 102 authorised users)."""
        for app_cls in APP_CLASSES.values():
            for user in app_cls.users:
                role = "admin" if user.endswith(("0", "prod")) else "user"
                self.voms[app_cls.vo].register(user, role=role)
        # One VO admin each, plus the Entrada operator, lands the §7
        # headcount at 102.
        for vo in GRID3_VOS:
            self.voms[vo].register(f"{vo}-admin", role="admin")

    def add_user(self, vo: str, name: str, role: str = "user"):
        """Register a new VO member and propagate the grid-map update to
        every site (the §5.3 admission procedure)."""
        user = self.voms[vo].register(name, role=role)
        refresh_site_gridmaps(
            self.sites.values(), list(self.voms.values()), now=self.engine.now
        )
        for site in self.sites.values():
            auth = site.services.get("authenticator")
            if auth is not None:
                auth.gridmap = site.service("gridmap")
        return user

    def _proxy_provider(self, vo: str):
        voms = self.voms[vo]

        def provider(user: str):
            # Users initialise a fresh proxy per submission session.
            return voms.proxy_for(user, lifetime=7 * 24 * 3600.0)

        return provider

    # -- applications (§4) ---------------------------------------------------
    def app_context(self) -> AppContext:
        """The dependency bundle applications are built from."""
        return AppContext(
            engine=self.engine,
            rng=self.rng,
            calendar=self.calendar,
            condorg=self.condorg,
            dagman=self.dagman,
            rls=self.rls,
            sites=self.sites,
            ledger=self.ledger,
            scale=self.config.scale,
            duration=self.duration,
            replica_selector=self.data.selector if self.data else None,
        )

    def start_applications(self) -> None:
        """Instantiate and launch the configured demonstrators."""
        if not self._deployed:
            self.deploy()
        if self._apps_started:
            return
        names = self.config.apps or list(APP_CLASSES)
        ctx = self.app_context()
        for name in names:
            cls = APP_CLASSES[name]
            if name == "ligo":
                app = cls(ctx, test_mode=self.config.ligo_test_mode)
            elif name == "exerciser":
                app = cls(ctx, probe_sites=self.exerciser_sites())
            else:
                app = cls(ctx)
            if name == "usatlas":
                # §6.1: GCE-Server deployed on 22 sites.
                app.deploy(sorted(self.sites)[:22])
            self.apps[name] = app
            app.start()
        self._apps_started = True

    # -- execution -----------------------------------------------------------
    def run(self, days: Optional[float] = None) -> None:
        """Advance the simulation (defaults to the configured window)."""
        horizon = self.engine.now + days * DAY if days is not None else self.duration
        self.engine.run(until=horizon)

    def run_full(self, progress=None, progress_slices: Optional[int] = None) -> None:
        """deploy + start apps + simulate the whole window + drain.

        With ``progress`` (a callable taking one
        :class:`~repro.monitoring.progress.ProgressEvent`), the window
        is simulated in ``progress_slices`` sliced ``engine.run(until=)``
        calls with a snapshot emitted after each — the kernel dispatches
        the identical event sequence either way, so a progress-observed
        run is byte-identical to a silent one.  Without it, this is
        exactly the pre-observability code path.
        """
        if progress is None:
            self.deploy()
            self.start_applications()
            self.run()
            # Final monitoring sweep so analysis sees everything.
            self.monitors["acdc"].poll_once()
            return
        from ..monitoring.progress import DEFAULT_SLICES, ProgressMeter
        meter = ProgressMeter(
            self, progress,
            slices=progress_slices if progress_slices else DEFAULT_SLICES,
        )
        self.deploy()
        meter.emit("phase", "deploy")
        self.start_applications()
        meter.emit("phase", "apps")
        for horizon in meter.horizons():
            # Deployment consumes sim time, so early horizons can
            # already be behind the clock; the tick still fires (the
            # emitted count stays a pure function of the slice count).
            if horizon > self.engine.now:
                self.engine.run(until=horizon)
            meter.emit("tick", "sim")
        self.monitors["acdc"].poll_once()
        meter.emit("end", "done")

    # -- analysis ----------------------------------------------------------------
    @property
    def acdc_db(self):
        return self.monitors["acdc"].database

    def troubleshooting(self):
        """The §8 troubleshooting/accounting API over this grid,
        data-management and trace queries included when those
        subsystems are on."""
        from ..ops import TroubleshootingAPI
        return TroubleshootingAPI(
            self.sites, self.acdc_db, data=self.data,
            trace=self.tracer.store,
            fairshare=self.fairshare, policy=self.policy_engine,
        )

    def viewer(self) -> MDViewer:
        """An MDViewer over this run's monitoring data."""
        return MDViewer(
            self.acdc_db,
            repository=self.monitors.get("monalisa"),
            ledger=self.ledger,
            calendar=self.calendar,
        )

    def _central_services(self) -> Dict[str, object]:
        """The off-site GridServices (RLS index, VOMS servers), keyed by
        the display name used as their 'site' in health reports."""
        central: Dict[str, object] = {"igoc-rls": self.rls}
        for vo, server in self.voms.items():
            central[f"voms-{vo}"] = server
        return central

    def availability_report(
        self, since: float = 0.0, until: Optional[float] = None
    ):
        """Per-(site, role) availability rows from the downtime ledgers,
        including the central RLS/VOMS services."""
        from ..services import availability_rows
        return availability_rows(
            self.sites.values(), since=since, until=until,
            extra_services=self._central_services(),
        )

    def fairshare_report(self):
        """Per-VO fair-share rows (:class:`FairShareStatus`); empty when
        ``fair_share`` is off."""
        if self.fairshare is None:
            return []
        return self.fairshare.report(self.engine.now)

    def policy_report(self):
        """Policy-rejection rows (:class:`PolicyRejectRow`); empty when
        ``fair_share`` is off."""
        if self.policy_engine is None:
            return []
        return self.policy_engine.reject_rows()

    def total_cpus(self) -> int:
        """CPU slots in this (scaled) grid."""
        return sum(site.cluster.total_cpus for site in self.sites.values())

    def registered_users(self) -> int:
        return sum(len(v) for v in self.voms.values())

    def concurrent_app_sites(self) -> int:
        """Sites that ran jobs from more than one VO (§7 milestone)."""
        by_site: Dict[str, set] = {}
        for record in self.acdc_db.records():
            by_site.setdefault(record.site, set()).add(record.vo)
        return sum(1 for vos in by_site.values() if len(vos) >= 2)

    def milestones(self, t0: float = 0.0, t1: Optional[float] = None) -> MilestonesTracker:
        """The §7 milestones table for this run.

        Extensive quantities (CPUs, data volume, concurrent jobs) are
        rescaled by ``scale`` for paper comparison; intensive ones
        (efficiency, utilisation, FTE) are reported as measured.
        """
        t1 = t1 if t1 is not None else self.engine.now
        scale = self.config.scale
        viewer = self.viewer()
        tracker = MilestonesTracker()
        tracker.record("cpus", self.total_cpus() * scale)
        tracker.record("users", self.registered_users())
        tracker.record("applications", len(self.apps) + 2)  # +NetLogger/Entrada studies
        tracker.record("concurrent_app_sites", self.concurrent_app_sites())
        tracker.record(
            "data_tb_per_day",
            bytes_to_tb(self.ledger.peak_daily_bytes(t0, t1)) * scale,
        )
        # §7 defines the band by its own peak numbers ("over 1300 jobs
        # ran simultaneously" on ">2500" CPUs ~ 52 %; "the metrics plots
        # are averages over specific time bins, which can report less
        # than the peak") — so the comparable statistic is peak
        # concurrency over capacity.
        total = self.total_cpus()
        if total > 0:
            tracker.record(
                "resource_utilisation",
                viewer.peak_concurrent_jobs(t0, t1) / total,
            )
        tracker.record("job_efficiency", self.acdc_db.success_rate())
        tracker.record(
            "peak_concurrent_jobs", viewer.peak_concurrent_jobs(t0, t1) * scale
        )
        tracker.record(
            "support_fte", self.igoc.tickets.support_fte(t0, max(t1, t0 + 1.0))
        )
        return tracker
