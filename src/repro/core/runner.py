"""The Grid3 job wrapper: what actually happens on a worker node.

§6.1 defines a job's steps — and therefore its failure surface — as
"pre-stage, job execution producing the output files, post-stage to the
final storage element at BNL, and registration to RLS".  This runner
executes exactly those steps for every job, against the real substrate
services (RLS lookups, GridFTP transfers over the contended WAN, storage
elements that genuinely fill up).

Failure behaviour reproduced here:

* **disk filling errors** — local output writes and archive writes raise
  :class:`StorageFullError` when the SE is full (§6.1/6.2);
* **network interruptions** — staging transfers fail when links drop;
* **site misconfiguration** — a Pacman-misconfigured site fails its jobs
  early (§6.2 "jobs often failed due to site configuration problems");
* **missing outbound connectivity** — jobs needing it die at start when
  mis-placed (§6.4 criterion 1);
* **application failures** — the spec's intrinsic failure probability
  (the ~10 % non-site failures of §6.1).

With ``use_srm`` enabled the runner reserves output space up front (local
and archive) — turning mid-job disk-full crashes into cheap, early
:class:`ReservationError` rejections, the §6.2/§8 "lesson learned".
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import (
    ApplicationError,
    ReservationError,
    SiteMisconfigurationError,
)
from ..middleware import gridftp
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..trace import NULL_SPAN


class Grid3Runner:
    """Callable runner plugged into every site's batch scheduler."""

    def __init__(
        self,
        sites: Dict[str, object],
        rls,
        rng: RngRegistry,
        use_srm: bool = False,
        misconfigured_failure_probability: float = 0.9,
        ledger=None,
        replica_selector=None,
    ) -> None:
        self.sites = sites
        self.rls = rls
        self.rng = rng
        self.use_srm = use_srm
        self.misconfigured_failure_probability = misconfigured_failure_probability
        #: Optional ReplicaSelector: stage-in sources rank by route
        #: quality instead of RLS order (None = legacy behaviour).
        self.replica_selector = replica_selector
        #: Optional TransferLedger: staging volume lands there with VO
        #: attribution (feeds the Fig. 5 analysis).
        self.ledger = ledger
        #: Counters by phase, feeding the §8 troubleshooting analysis.
        self.failures_by_phase = {"pre-stage": 0, "execute": 0, "post-stage": 0, "register": 0}
        self.bytes_moved = 0.0

    # -- helpers -----------------------------------------------------------
    def _fail(self, phase: str, exc: BaseException) -> BaseException:
        self.failures_by_phase[phase] += 1
        return exc

    def _reserve(self, site, nbytes: float):
        """SRM reservation when enabled; None otherwise."""
        if not self.use_srm or nbytes <= 0:
            return None
        srm = site.services.get("srm")
        if srm is None:
            return None
        return srm.prepare_to_put(nbytes)  # ReservationError propagates

    # -- the wrapper ---------------------------------------------------------
    def __call__(self, engine: Engine, job, node):
        spec = job.spec
        site = self.sites[job.site_name]

        # Trace context: the attempt span GRAM hung off the job.  The
        # queue wait ends the instant this wrapper starts executing.
        span = job.trace or NULL_SPAN
        queue_span = span.open_child("queue")
        if queue_span is not None:
            queue_span.finish()

        # Environment sanity (fails fast, like a wrapper script would).
        if spec.requires_outbound and not site.config.outbound_connectivity:
            raise self._fail(
                "pre-stage",
                SiteMisconfigurationError(
                    f"{site.name}: worker nodes have no outbound connectivity"
                ),
            )
        if site.services.get("misconfigured") and self.rng.bernoulli(
            f"runner.misconfig.{site.name}", self.misconfigured_failure_probability
        ):
            raise self._fail(
                "pre-stage",
                SiteMisconfigurationError(f"{site.name}: bad site configuration"),
            )

        local_reservation = None
        archive_reservation = None
        archive = (
            self.sites.get(spec.archive_site)
            if spec.archive_site and spec.archive_site != site.name
            else None
        )
        if self.use_srm:
            try:
                local_reservation = self._reserve(site, spec.output_bytes + spec.input_bytes)
                if archive is not None:
                    archive_reservation = self._reserve(archive, spec.output_bytes)
            except ReservationError as exc:
                raise self._fail("pre-stage", exc)

        staged_inputs = []
        completed_ok = False
        try:
            # --- step 1: pre-stage inputs --------------------------------
            stage_in_span = span.child("stage-in", phase="stage-in")
            for lfn, size in spec.inputs:
                if lfn in site.storage:
                    continue
                try:
                    if self.replica_selector is not None:
                        replica = self.replica_selector.best(lfn, site)
                    else:
                        replica = self.rls.best_replica(lfn)
                except Exception as exc:
                    raise self._fail("pre-stage", exc)
                src = self.sites[replica.site]
                try:
                    yield from gridftp.transfer(
                        engine, src, site, lfn, size,
                        reservation=local_reservation,
                        span=stage_in_span,
                    )
                except Exception as exc:
                    raise self._fail("pre-stage", exc)
                job.bytes_staged_in += size
                self.bytes_moved += size
                staged_inputs.append(lfn)
                if self.ledger is not None:
                    self.ledger.record(
                        engine.now, spec.vo, size, src.name, site.name,
                        kind="stage-in",
                    )
            stage_in_span.finish()

            # --- step 2: execute ------------------------------------------
            # Wall-clock compute time scales with the node's speed
            # relative to the paper's 2 GHz reference (§4.5).
            compute_span = span.child(
                "compute", phase="compute", node=getattr(node, "node_id", ""),
            )
            if spec.runtime > 0:
                speed = getattr(site, "cpu_speed", 1.0) or 1.0
                yield engine.timeout(spec.runtime / speed)
            if spec.app_failure_probability > 0 and self.rng.bernoulli(
                f"runner.appfail.{spec.vo}", spec.app_failure_probability
            ):
                raise self._fail(
                    "execute", ApplicationError(f"{spec.name}: application error")
                )

            # Produce outputs on the local SE (the §6.1/6.2 disk-full point).
            for lfn, size in spec.outputs:
                try:
                    site.storage.store(lfn, size, reservation=local_reservation)
                except Exception as exc:
                    raise self._fail("execute", exc)
            compute_span.finish()

            # --- step 3: post-stage to the archive SE ---------------------
            if archive is not None:
                stage_out_span = span.child("stage-out", phase="stage-out")
                for lfn, size in spec.outputs:
                    try:
                        yield from gridftp.transfer(
                            engine, site, archive, lfn, size,
                            reservation=archive_reservation,
                            rls=self.rls if spec.register_outputs else None,
                            span=stage_out_span,
                        )
                    except Exception as exc:
                        raise self._fail("post-stage", exc)
                    job.bytes_staged_out += size
                    self.bytes_moved += size
                    if self.ledger is not None:
                        self.ledger.record(
                            engine.now, spec.vo, size, site.name, archive.name,
                            kind="stage-out",
                        )
                stage_out_span.finish()
            elif spec.register_outputs:
                # --- step 4: register local outputs -----------------------
                register_span = span.child("register", phase="register")
                for lfn, size in spec.outputs:
                    try:
                        self.rls.register(site.name, lfn, size,
                                          span=register_span)
                    except Exception as exc:
                        raise self._fail("register", exc)
                register_span.finish()
            completed_ok = True
        finally:
            # Scratch hygiene: staged inputs always go; archived outputs
            # leave the local SE once safely at the Tier1.  Failed jobs
            # leave residue behind — which is exactly how real Grid3
            # disks filled up.
            if completed_ok:
                for lfn in staged_inputs:
                    if lfn in site.storage:
                        site.storage.delete(lfn)
                if archive is not None:
                    for lfn, _size in spec.outputs:
                        if lfn in site.storage and lfn in archive.storage:
                            site.storage.delete(lfn)
            if self.use_srm:
                srm = site.services.get("srm")
                if srm is not None and local_reservation is not None:
                    srm.put_done(local_reservation)
                if archive is not None and archive_reservation is not None:
                    archive_srm = archive.services.get("srm")
                    if archive_srm is not None:
                        archive_srm.put_done(archive_reservation)
