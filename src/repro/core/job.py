"""The grid job model shared by GRAM, the batch systems, and the apps.

A :class:`JobSpec` is the immutable description a user (or workflow
planner) writes; a :class:`Job` is one attempt to run it, with the full
state/timestamp record that the ACDC job monitor later harvests into
Table 1.  The spec fields map directly onto the paper's §6.4 site
selection criteria: ``requires_outbound`` (criterion 1), ``disk_needed``
(criterion 2), ``walltime_request`` (criterion 3), and input/output
volumes (criterion 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from ..sim.units import HOUR


class JobState(Enum):
    """GRAM-style job lifecycle states."""

    UNSUBMITTED = "unsubmitted"
    PENDING = "pending"        # accepted by the gatekeeper, queued at the LRM
    STAGE_IN = "stage_in"      # running the input-staging step
    ACTIVE = "active"          # computing on a worker node
    STAGE_OUT = "stage_out"    # shipping outputs to the archive SE
    DONE = "done"
    FAILED = "failed"


#: Gatekeeper load multipliers by staging intensity (§6.4: "a factor of
#: two can be applied ... the factor can increase to three or four").
STAGING_LOAD_FACTOR = {
    "none": 1.0,
    "minimal": 2.0,
    "heavy": 3.5,
}


@dataclass(frozen=True, slots=True)
class JobSpec:
    """What a job is: executable identity, resources, data movement."""

    name: str
    vo: str
    user: str
    #: Pure compute duration in seconds on the reference 2 GHz CPU (§4.5).
    runtime: float
    #: Walltime the submitter requests from the batch system (criterion 3).
    walltime_request: float = 24 * HOUR
    #: Input files to stage in if not already local: (lfn, bytes).
    inputs: Tuple[Tuple[str, float], ...] = ()
    #: Output files produced locally: (lfn, bytes).
    outputs: Tuple[Tuple[str, float], ...] = ()
    #: Gatekeeper/file-staging intensity: "none" | "minimal" | "heavy".
    staging: str = "minimal"
    #: Criterion 1: worker node must reach the public internet.
    requires_outbound: bool = False
    #: Criterion 2: scratch space needed beyond inputs/outputs (bytes).
    disk_needed: float = 0.0
    #: Where outputs are archived after the run (None = stay local).
    archive_site: Optional[str] = None
    #: Register archived outputs in RLS (the ATLAS §6.1 final step)?
    register_outputs: bool = True
    #: Intrinsic application failure probability (the ~10 % of failures
    #: that are not site problems, §6.1).
    app_failure_probability: float = 0.0
    #: Batch priority (PBS qsub -p style; higher runs first).
    priority: int = 0
    #: Backfill-only job (the Exerciser "ran repeatedly with a low
    #: priority", §4.7): runs only when no normal work is queued.
    nice_user: bool = False

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ValueError("runtime cannot be negative")
        if self.walltime_request <= 0:
            raise ValueError("walltime request must be positive")
        if self.staging not in STAGING_LOAD_FACTOR:
            raise ValueError(f"unknown staging class {self.staging!r}")
        if not 0 <= self.app_failure_probability <= 1:
            raise ValueError("app_failure_probability must be in [0,1]")

    @property
    def input_bytes(self) -> float:
        """Total stage-in volume."""
        return sum(size for _lfn, size in self.inputs)

    @property
    def output_bytes(self) -> float:
        """Total produced volume."""
        return sum(size for _lfn, size in self.outputs)

    @property
    def staging_load_factor(self) -> float:
        """This job's gatekeeper load multiplier (§6.4)."""
        return STAGING_LOAD_FACTOR[self.staging]

    @property
    def local_disk_footprint(self) -> float:
        """Bytes of site disk the job occupies while running."""
        return self.input_bytes + self.output_bytes + self.disk_needed


_job_ids = itertools.count(1)


def reset_job_ids(start: int = 1) -> None:
    """Restart job numbering.  Each Grid3 build calls this, so two
    same-seed runs produce byte-identical job records even within one
    process (the counter is otherwise module-global)."""
    global _job_ids
    _job_ids = itertools.count(start)


@dataclass(slots=True)
class Job:
    """One attempt to run a spec on a specific site.

    ``slots=True``: a 7-day full-mix run creates hundreds of thousands
    of Jobs; the packed layout drops per-instance memory by ~60% and
    speeds up the timestamp/state stores on the scheduling hot path.
    """

    spec: JobSpec
    site_name: str = ""
    job_id: int = field(default_factory=lambda: next(_job_ids))
    state: JobState = JobState.UNSUBMITTED
    #: Timestamps (sim seconds); -1 = not reached.
    submitted_at: float = -1.0
    started_at: float = -1.0
    finished_at: float = -1.0
    #: Terminal disposition.
    error: Optional[BaseException] = None
    #: Retry lineage: which attempt of the same logical work this is.
    attempt: int = 1
    #: Bytes actually moved (for Fig. 5 accounting).
    bytes_staged_in: float = 0.0
    bytes_staged_out: float = 0.0
    #: Node the job ran on (for rollover attribution).
    node_id: str = ""
    #: Completion event created by the LRM at submit time; fires with the
    #: job itself once it reaches DONE or FAILED (never fails — clients
    #: inspect ``job.state``).
    completion: Optional[object] = None
    #: Active trace span for this attempt (a :class:`repro.trace.Span`),
    #: set by the gatekeeper when tracing is on; None otherwise.  The
    #: runner hangs its phase spans off it.
    trace: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def vo(self) -> str:
        """Owning VO (delegated to the spec)."""
        return self.spec.vo

    @property
    def succeeded(self) -> bool:
        return self.state is JobState.DONE

    @property
    def failed(self) -> bool:
        return self.state is JobState.FAILED

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    @property
    def queue_time(self) -> float:
        """Seconds spent waiting in the batch queue."""
        if self.submitted_at < 0 or self.started_at < 0:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def run_time(self) -> float:
        """Wall-clock seconds from start to finish (0 if never started)."""
        if self.started_at < 0 or self.finished_at < 0:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def cpu_time(self) -> float:
        """CPU seconds consumed (= run time on a dedicated slot)."""
        return self.run_time

    @property
    def failure_category(self) -> Optional[str]:
        """"site" / "application" / "infrastructure", or None."""
        if self.error is None:
            return None
        return getattr(self.error, "category", "infrastructure")

    def mark(self, state: JobState, now: float) -> None:
        """Advance the lifecycle, recording the relevant timestamp."""
        self.state = state
        if state is JobState.PENDING and self.submitted_at < 0:
            self.submitted_at = now
        elif state in (JobState.STAGE_IN, JobState.ACTIVE) and self.started_at < 0:
            self.started_at = now
        elif state in (JobState.DONE, JobState.FAILED):
            self.finished_at = now

    def __repr__(self) -> str:
        return (
            f"<Job #{self.job_id} {self.spec.name} [{self.vo}] "
            f"{self.state.value} @{self.site_name or '?'}>"
        )
