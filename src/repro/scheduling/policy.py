"""Per-site usage policies and submission-side admission control (§5, §7).

Grid3's defining constraint was multi-VO resource sharing: more than
60 % of CPUs came from shared, non-dedicated facilities (§7), and "at
each site ... appropriate policies were implemented at each local batch
scheduler" (§5) to say which VOs could run and how much.  The seed
reproduction modelled none of that — a single greedy VO could starve
the other five.

This module is the policy half of the fair-share scheduling layer:

* :class:`UsagePolicy` — one site's *published* policy: a VO
  allow-list, per-VO shares of the site's concurrent submission slots,
  and a max-runtime class.  Attached to every
  :class:`~repro.fabric.site.Site` as ``site.usage_policy`` (passive:
  publication alone changes nothing).
* :func:`paper_policies` — the policy set reconstructed for the
  27-site catalog: Tier1 archives prioritise their owner VO, dedicated
  facilities welcome guests at half share, shared facilities cap
  everyone; a couple of sites carry real VO allow-lists.
* :class:`PolicyEngine` — the *enforcement* side, used by Condor-G
  when ``Grid3Config.fair_share`` is on: policy-rejected matches are
  never submitted, and per-(site, VO) share slots throttle over-share
  VOs **before** the per-site throttle.  Publishes ``sched.policy.*``
  metrics and tracks the peak concurrency per (site, VO) so the cap
  invariant is testable.

Everything here is deterministic — no RNG draws — so building (or even
attaching) policies perturbs no stream; with ``fair_share=False`` a
same-seed run is byte-identical to a build without this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.results import ReportRecord
from ..monitoring.core import MetricSample, MetricStore, make_tags
from ..sim.engine import Engine
from ..sim.resources import Resource
from ..sim.units import HOUR

#: Max-runtime classes a site's policy advertises (§6.4 criterion 3 as
#: a published class instead of a bare number).
RUNTIME_CLASSES: Dict[str, float] = {
    "short": 24 * HOUR,
    "production": 96 * HOUR,
    "long": float("inf"),
}


def runtime_class_for(max_walltime: float) -> str:
    """The class label a site with this batch walltime limit publishes."""
    if max_walltime <= RUNTIME_CLASSES["short"]:
        return "short"
    if max_walltime <= RUNTIME_CLASSES["production"]:
        return "production"
    return "long"


@dataclass(frozen=True)
class UsagePolicy(ReportRecord):
    """One site's published usage policy.

    ``share_caps`` maps a VO to the fraction of the site's concurrent
    submission slots it may hold at once (the submission-side proxy for
    a CPU share); VOs not listed get ``default_share_cap``.  An empty
    ``allowed_vos`` means every VO is welcome.
    """

    site: str
    allowed_vos: Tuple[str, ...] = ()
    share_caps: Tuple[Tuple[str, float], ...] = ()
    default_share_cap: float = 1.0
    runtime_class: str = "long"
    max_walltime: float = RUNTIME_CLASSES["production"]

    def admits(self, vo: str, walltime_request: float) -> bool:
        """Whether a job from ``vo`` passes this policy at match time."""
        if self.allowed_vos and vo not in self.allowed_vos:
            return False
        return walltime_request <= self.max_walltime

    def rejection_reason(self, vo: str, walltime_request: float) -> Optional[str]:
        """Why a job is rejected ("vo-not-allowed" | "runtime-class"),
        or None when admitted."""
        if self.allowed_vos and vo not in self.allowed_vos:
            return "vo-not-allowed"
        if walltime_request > self.max_walltime:
            return "runtime-class"
        return None

    def share_cap(self, vo: str) -> float:
        """The fraction of concurrent slots ``vo`` may occupy."""
        for name, cap in self.share_caps:
            if name == vo:
                return cap
        return self.default_share_cap

    def max_running(self, vo: str, slots: int) -> int:
        """Concurrent-slot cap for ``vo`` given ``slots`` total (>= 1)."""
        return max(1, int(math.ceil(self.share_cap(vo) * max(1, slots))))


#: Sites with genuine VO allow-lists in the reconstructed policy set
#: (every other site admits all six VOs).
RESTRICTED_SITES: Dict[str, Tuple[str, ...]] = {
    # The Korean CMS site ran CMS production plus iVDGL exerciser probes.
    "KNU_Grid3": ("uscms", "ivdgl"),
    # The Milwaukee LIGO cluster admitted LIGO plus the catch-all VOs.
    "UWM_LIGO": ("ligo", "ivdgl", "usatlas"),
}


def policy_for_spec(spec, vos: Iterable[str]) -> UsagePolicy:
    """The reconstructed paper policy for one catalog SiteSpec.

    Deterministic rules consistent with §5/§7:

    * Tier1 archives: owner VO uncapped, guests at a quarter share;
    * dedicated VO facilities: owner uncapped, guests at half share;
    * shared facilities: owner at three quarters, guests at half (the
      site's own users still run local load outside Grid3);
    * a few sites carry explicit VO allow-lists
      (:data:`RESTRICTED_SITES`).
    """
    vos = tuple(sorted(vos))
    if spec.tier1:
        guest_cap, owner_cap = 0.25, 1.0
    elif not spec.shared:
        guest_cap, owner_cap = 0.5, 1.0
    else:
        guest_cap, owner_cap = 0.5, 0.75
    caps = tuple(
        (vo, owner_cap if vo == spec.owner_vo else guest_cap) for vo in vos
    )
    return UsagePolicy(
        site=spec.name,
        allowed_vos=RESTRICTED_SITES.get(spec.name, ()),
        share_caps=caps,
        default_share_cap=guest_cap,
        runtime_class=runtime_class_for(spec.max_walltime_hours * HOUR),
        max_walltime=spec.max_walltime_hours * HOUR,
    )


def paper_policies(specs, vos: Iterable[str]) -> Dict[str, UsagePolicy]:
    """The reconstructed per-site policy set for a (scaled) catalog."""
    return {spec.name: policy_for_spec(spec, vos) for spec in specs}


def open_policies(specs, vos: Iterable[str]) -> Dict[str, UsagePolicy]:
    """An everything-goes policy set: all VOs, full shares — enforcement
    becomes a no-op (the ablation baseline for the policy layer)."""
    return {
        spec.name: UsagePolicy(
            site=spec.name,
            max_walltime=spec.max_walltime_hours * HOUR,
            runtime_class=runtime_class_for(spec.max_walltime_hours * HOUR),
        )
        for spec in specs
    }


#: Named policy sets ``Grid3Config.site_policies`` selects from.
POLICY_SETS = {"paper": paper_policies, "open": open_policies}


@dataclass(frozen=True)
class PolicyRejectRow(ReportRecord):
    """One (site, vo, reason) cell of the policy-rejection report."""

    site: str
    vo: str
    reason: str
    count: int


@dataclass(frozen=True)
class ShareCapRow(ReportRecord):
    """Peak concurrency vs cap for one (site, vo) share slot."""

    site: str
    vo: str
    cap: int
    peak: int


class PolicyEngine:
    """Runtime admission control over a policy set.

    One engine is shared by every VO's Condor-G submit host.  For each
    (site, VO) it lazily builds a :class:`~repro.sim.resources.Resource`
    sized to the policy's share cap of the site's submission slots;
    Condor-G acquires a share token *before* the per-site throttle, so
    an over-share VO queues here while other VOs' slots stay free.
    """

    def __init__(
        self,
        engine: Engine,
        policies: Dict[str, UsagePolicy],
        slots_per_site: int = 100,
        store: Optional[MetricStore] = None,
    ) -> None:
        self.engine = engine
        self.policies = policies
        self.slots_per_site = max(1, int(slots_per_site))
        #: ``sched.policy.*`` metrics land here.
        self.store = store if store is not None else MetricStore(max_samples=100_000)
        self._shares: Dict[Tuple[str, str], Resource] = {}
        self._caps: Dict[Tuple[str, str], int] = {}
        self._running: Dict[Tuple[str, str], int] = {}
        self._peak: Dict[Tuple[str, str], int] = {}
        self._rejects: Dict[Tuple[str, str, str], int] = {}
        #: Lifetime counters.
        self.admission_checks = 0
        self.rejections = 0

    # -- admission ------------------------------------------------------
    def policy_for(self, site_name: str) -> Optional[UsagePolicy]:
        return self.policies.get(site_name)

    def admits(self, site_name: str, vo: str, walltime_request: float) -> bool:
        """Policy check at match time; rejections are counted and
        published (``sched.policy.rejects``), never submitted."""
        self.admission_checks += 1
        policy = self.policies.get(site_name)
        if policy is None:
            return True
        reason = policy.rejection_reason(vo, walltime_request)
        if reason is None:
            return True
        self.rejections += 1
        key = (site_name, vo, reason)
        self._rejects[key] = self._rejects.get(key, 0) + 1
        self.store.append(MetricSample(
            self.engine.now, "sched.policy.rejects",
            float(self._rejects[key]),
            make_tags(site=site_name, vo=vo, reason=reason),
        ))
        return False

    # -- share slots ----------------------------------------------------
    def cap_for(self, site_name: str, vo: str) -> int:
        """The concurrent-slot cap this engine enforces for (site, vo)."""
        key = (site_name, vo)
        cap = self._caps.get(key)
        if cap is None:
            policy = self.policies.get(site_name)
            cap = (
                policy.max_running(vo, self.slots_per_site)
                if policy is not None else self.slots_per_site
            )
            self._caps[key] = cap
        return cap

    def share_resource(self, site_name: str, vo: str) -> Resource:
        """The FIFO share slot pool for (site, vo), built on first use."""
        key = (site_name, vo)
        res = self._shares.get(key)
        if res is None:
            res = Resource(self.engine, capacity=self.cap_for(site_name, vo))
            self._shares[key] = res
        return res

    def note_start(self, site_name: str, vo: str) -> None:
        """Bookkeeping on share-token acquisition (cap-invariant data)."""
        key = (site_name, vo)
        running = self._running.get(key, 0) + 1
        self._running[key] = running
        if running > self._peak.get(key, 0):
            self._peak[key] = running
        self.store.append(MetricSample(
            self.engine.now, "sched.share.running", float(running),
            make_tags(site=site_name, vo=vo),
        ))

    def note_finish(self, site_name: str, vo: str) -> None:
        key = (site_name, vo)
        self._running[key] = max(0, self._running.get(key, 0) - 1)

    # -- reports --------------------------------------------------------
    def reject_rows(self) -> List[PolicyRejectRow]:
        """Policy rejections by (site, vo, reason), sorted."""
        return [
            PolicyRejectRow(site=s, vo=v, reason=r, count=c)
            for (s, v, r), c in sorted(self._rejects.items())
        ]

    def share_rows(self) -> List[ShareCapRow]:
        """Peak-vs-cap rows for every share slot ever used, sorted."""
        return [
            ShareCapRow(site=s, vo=v, cap=self._caps[(s, v)],
                        peak=self._peak.get((s, v), 0))
            for (s, v) in sorted(self._shares)
        ]

    def cap_violations(self) -> List[ShareCapRow]:
        """Share rows whose observed peak exceeded the cap (must always
        be empty — the property the tests pin)."""
        return [row for row in self.share_rows() if row.peak > row.cap]
