"""Condor-G: the grid-level submission agent (§4.2, §4.7).

"CMS Production jobs are specified by reading input parameters from a
control database and converting them to DAGs suitable for submission to
Condor-G/DAGMan."  Condor-G holds a queue of grid jobs on the submit
host, throttles concurrent jobs per remote site, performs the GRAM
submission (with retry/backoff over transient gatekeeper errors), and
tracks each job to completion.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.job import Job, JobSpec, JobState
from ..errors import (
    AuthenticationError,
    AuthorizationError,
    GatekeeperOverloadError,
    GridError,
    ServiceUnavailableError,
    SubmissionError,
)
from ..sim.engine import Engine, Event
from ..sim.resources import Resource
from ..sim.units import MINUTE
from ..trace import NULL_SPAN, NULL_TRACER


class GridJobHandle:
    """Client-side handle for one logical grid job.

    ``done`` fires (always successfully) with the final :class:`Job`
    record — inspect ``job.state`` for the outcome.  A handle that never
    found a site carries a synthetic FAILED job.
    """

    def __init__(self, engine: Engine, spec: JobSpec) -> None:
        self.spec = spec
        self.done: Event = engine.event()
        self.attempts = 0
        self.job: Optional[Job] = None
        self.sites_tried: List[str] = []
        #: Root span of this job's trace (NULL_SPAN when tracing is off).
        self.trace = NULL_SPAN

    @property
    def succeeded(self) -> bool:
        return self.job is not None and self.job.succeeded


class CondorG:
    """A VO's submit host."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        sites: Dict[str, object],
        proxy_provider: Callable[[str], object],
        selector=None,
        max_retries: int = 2,
        per_site_throttle: int = 100,
        retry_delay: float = 5 * MINUTE,
        tracer=None,
        policy=None,
        fairshare=None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.sites = sites
        self.proxy_provider = proxy_provider
        #: Optional SiteSelector; when set, submissions without an
        #: explicit site are matched, and retries move to other sites.
        self.selector = selector
        #: Optional :class:`~repro.scheduling.policy.PolicyEngine`
        #: (shared across all VOs' submit hosts).  When set, matches a
        #: site's usage policy rejects are never submitted, and a
        #: per-(site, VO) share slot is acquired *before* the per-site
        #: throttle so over-share VOs queue without starving others.
        self.policy = policy
        #: Optional :class:`~repro.scheduling.fairshare.FairShareLedger`;
        #: charged with each finished job's CPU time.
        self.fairshare = fairshare
        #: JobTracer (or the shared no-op): one trace per logical job,
        #: rooted here at the submit host.
        self.tracer = tracer or NULL_TRACER
        self.max_retries = max_retries
        self.retry_delay = retry_delay
        self.per_site_throttle = per_site_throttle
        # Throttle Resources are created on first submission to a site:
        # at synthetic-fabric scale most of a VO's submit host's sites
        # never see one of its jobs, and N-VOs x M-sites eager maps are
        # pure construction overhead.  Resource construction is passive
        # (no events, no RNG), so laziness cannot change a run.
        self._throttles: Dict[str, Resource] = {}
        #: Counters (the troubleshooting/accounting APIs of §8).
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.resubmissions = 0
        self.unmatched = 0

    def submit(
        self,
        spec: JobSpec,
        site_name: Optional[str] = None,
        trace_attrs: Optional[Dict[str, object]] = None,
    ) -> GridJobHandle:
        """Queue a grid job; returns its handle immediately.

        ``trace_attrs`` are extra attributes for the job's trace root
        (DAGMan stamps its dag/node identity through here).
        """
        handle = GridJobHandle(self.engine, spec)
        handle.trace = self.tracer.start_trace(
            spec.name, kind="job", vo=spec.vo, user=spec.user,
            submit_host=self.name, **(trace_attrs or {}),
        )
        self.engine.process(self._manage(handle, site_name), name=f"condorg-{spec.name}")
        self.submitted += 1
        return handle

    def submit_many(self, specs: Sequence[JobSpec], site_name: Optional[str] = None) -> List[GridJobHandle]:
        """Queue a batch of jobs."""
        return [self.submit(spec, site_name) for spec in specs]

    # -- internals ----------------------------------------------------------
    def _admits(self, site_name: str, spec: JobSpec) -> bool:
        """Policy admission check (always true with no policy engine)."""
        if self.policy is None:
            return True
        return self.policy.admits(site_name, spec.vo, spec.walltime_request)

    def _pick_site(self, spec: JobSpec, pinned: Optional[str], tried: List[str]) -> Optional[str]:
        if pinned is not None:
            if pinned in tried or not self._admits(pinned, spec):
                return None
            return pinned
        if self.selector is not None:
            excluded = list(tried)
            while True:
                site_name = self.selector.select(spec, exclude=excluded)
                if site_name is None or self._admits(site_name, spec):
                    return site_name
                # Policy-rejected match: never submitted; re-match
                # against the remaining sites.
                excluded.append(site_name)
        remaining = [
            name for name in self.sites
            if name not in tried and self._admits(name, spec)
        ]
        return remaining[0] if remaining else None

    def _manage(self, handle: GridJobHandle, pinned: Optional[str]):
        spec = handle.spec
        root = handle.trace
        last_job: Optional[Job] = None
        while handle.attempts <= self.max_retries:
            site_name = self._pick_site(spec, pinned, handle.sites_tried)
            if site_name is None:
                break
            handle.attempts += 1
            handle.sites_tried.append(site_name)
            site = self.sites[site_name]
            attempt_span = root.child(
                f"attempt-{handle.attempts}", phase="attempt", site=site_name,
            )
            # Over-share VOs wait here, before taking a throttle slot,
            # so other VOs' submissions keep flowing to the site.
            share = share_slot = None
            if self.policy is not None:
                share = self.policy.share_resource(site_name, spec.vo)
                share_slot = share.request()
                yield share_slot
                self.policy.note_start(site_name, spec.vo)
            throttle = self._throttles.get(site_name)
            if throttle is None:
                throttle = self._throttles[site_name] = Resource(
                    self.engine, self.per_site_throttle
                )
            slot = throttle.request()
            yield slot
            try:
                job = yield from self._submit_with_backoff(site, spec, attempt_span)
            except GridError as exc:
                throttle.release(slot)
                if share is not None:
                    share.release(share_slot)
                    self.policy.note_finish(site_name, spec.vo)
                attempt_span.close_subtree("error")
                attempt_span.annotate(error=type(exc).__name__)
                # Site unusable right now: try another (or give up).
                if handle.attempts <= self.max_retries:
                    self.resubmissions += 1
                continue
            job.attempt = handle.attempts
            self.tracer.bind_job(job.job_id, attempt_span)
            attempt_span.annotate(job_id=job.job_id)
            if self.selector is not None:
                self.selector.record_use(spec.vo, spec.user, site_name)
            final = yield job.completion
            throttle.release(slot)
            if share is not None:
                share.release(share_slot)
                self.policy.note_finish(site_name, spec.vo)
            if self.fairshare is not None:
                self.fairshare.charge(spec.vo, final.cpu_time, self.engine.now)
            gatekeeper = site.service("gatekeeper")
            gatekeeper.job_finished(final)
            if final.error is not None:
                attempt_span.annotate(error=type(final.error).__name__)
            attempt_span.close_subtree("ok" if final.succeeded else "error")
            last_job = final
            if final.succeeded:
                break
            if handle.attempts <= self.max_retries:
                self.resubmissions += 1
        if last_job is None:
            # Never even got accepted anywhere.
            self.unmatched += 1
            last_job = Job(spec=spec)
            last_job.error = SubmissionError("no usable site found")
            last_job.mark(JobState.FAILED, self.engine.now)
        handle.job = last_job
        if last_job.succeeded:
            self.completed += 1
        else:
            self.failed += 1
        self.tracer.finalize(root, "ok" if last_job.succeeded else "error")
        handle.done.succeed(last_job)

    def _submit_with_backoff(self, site, spec: JobSpec, span=NULL_SPAN):
        """One GRAM submission, retrying transient errors with backoff.

        Overload and service-down errors are transient (retried in
        place); authentication/authorization and policy rejections are
        permanent for this site and propagate.
        """
        delay = self.retry_delay
        for _ in range(3):
            gatekeeper = site.service("gatekeeper")
            proxy = self.proxy_provider(spec.user)
            try:
                return gatekeeper.submit(proxy, spec, span=span)
            except (GatekeeperOverloadError, ServiceUnavailableError):
                yield self.engine.timeout(delay)
                delay *= 2
        # Still failing: bubble the transient error up as site-unusable.
        raise ServiceUnavailableError(f"{site.name}: submission kept failing")
