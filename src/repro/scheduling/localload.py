"""Background local load at shared facilities.

§7: "More than 60% of CPU resources are drawn from non-dedicated
facilities that are both shared among Grid3 participants and available
to local users."  At such sites, local (non-grid) users occupy a
fluctuating share of the CPUs, which is why the catalog's typical
availability is below 1 and why the paper's utilisation metric landed at
40–70 % rather than 90 %.

:class:`LocalLoadGenerator` is a process that periodically retargets the
number of CPUs held by synthetic "local jobs" around the site's
configured mean occupancy, with stochastic jitter.
"""

from __future__ import annotations

from typing import List

from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.units import HOUR


class LocalLoadGenerator:
    """Occupies ``1 - availability`` of a shared site's CPUs on average."""

    def __init__(
        self,
        engine: Engine,
        site,
        rng: RngRegistry,
        availability: float,
        adjust_interval: float = 1 * HOUR,
        jitter: float = 0.10,
    ) -> None:
        if not 0.0 <= availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")
        self.engine = engine
        self.site = site
        self.rng = rng
        self.availability = availability
        self.adjust_interval = adjust_interval
        self.jitter = jitter
        self._held: List[str] = []  # occupant keys currently holding CPUs
        self._nodes: dict = {}  # occupant key -> WorkerNode it landed on
        self._counter = 0
        self.process = engine.process(self._run(), name=f"localload-{site.name}")

    @property
    def held_cpus(self) -> int:
        """CPUs currently taken by local users."""
        return len(self._held)

    def _target(self) -> int:
        mean_occupancy = 1.0 - self.availability
        noise = self.rng.uniform(
            f"localload.{self.site.name}", -self.jitter, self.jitter
        )
        occupancy = min(1.0, max(0.0, mean_occupancy + noise))
        return int(round(self.site.cluster.total_cpus * occupancy))

    def _run(self):
        while True:
            target = self._target()
            # Grow: grab free CPUs (never pre-empting grid jobs — local
            # schedulers at these sites gave everyone a fair share, and
            # pre-emption effects already show up as node failures).
            while len(self._held) < target:
                key = f"local-{self.site.name}-{self._counter}"
                self._counter += 1
                node = self.site.cluster.allocate(key)
                if node is None:
                    break
                self._held.append(key)
                self._nodes[key] = node
            # Shrink: local users log off.  The key->node map makes each
            # logoff O(1); release is a no-op if a node failure already
            # evicted the key.
            while len(self._held) > target:
                key = self._held.pop()
                node = self._nodes.pop(key, None)
                if node is not None:
                    self.site.cluster.release(node, key)
            yield self.engine.timeout(self.adjust_interval)


def add_local_load(engine: Engine, sites, specs_by_name, rng: RngRegistry):
    """Attach load generators to every shared site in a built grid.

    ``specs_by_name`` maps site name -> SiteSpec (for the availability).
    Returns the generators.
    """
    generators = []
    for site in sites:
        spec = specs_by_name.get(site.name)
        if spec is not None and spec.shared:
            generators.append(
                LocalLoadGenerator(engine, site, rng, spec.typical_availability)
            )
    return generators
