"""DAGMan: dependency-ordered execution of workflow DAGs over Condor-G.

"CMS Production jobs are ... converting them to DAGs suitable for
submission to Condor-G/DAGMan" (§4.2); ATLAS and SDSS workflows are
Chimera/Pegasus DAGs run the same way (§4.1, §4.3).  The model submits
READY nodes (up to a submit throttle), retries failed nodes, marks
descendants of exhausted nodes unreachable, and reports a rescue DAG.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import AnyOf, Engine
from ..trace import NULL_TRACER
from ..workflow.dag import DAG, DagNode, NodeState
from .condorg import CondorG, GridJobHandle


class DagmanRun:
    """Outcome record for one DAG execution."""

    def __init__(self, dag: DAG) -> None:
        self.dag = dag
        self.jobs: List = []          # final Job records, all attempts
        self.nodes_done = 0
        self.nodes_failed = 0
        self.nodes_unreachable = 0

    @property
    def succeeded(self) -> bool:
        return self.dag.succeeded

    def rescue_dag(self) -> DAG:
        """The un-done remainder, resubmittable later."""
        return self.dag.rescue_dag()


class DAGMan:
    """Executes DAGs through a Condor-G submit host."""

    def __init__(
        self,
        engine: Engine,
        condorg: CondorG,
        max_idle: int = 50,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.condorg = condorg
        #: Throttle on simultaneously submitted (not yet finished) nodes,
        #: DAGMan's -maxidle/-maxjobs knob.
        self.max_idle = max_idle
        #: Workflow-level tracer; inherits the submit host's when unset,
        #: so dag and job traces land in the same store.
        self.tracer = tracer or getattr(condorg, "tracer", None) or NULL_TRACER

    def run(self, dag: DAG):
        """Generator process: execute ``dag`` to quiescence.

        Returns a :class:`DagmanRun`.  Compose with ``yield from`` or
        wrap in ``engine.process``.

        Tracing: the DAG gets a ``kind="workflow"`` trace with one span
        per node submission; each node's grid job keeps its own rooted
        job trace (linked back through ``dag``/``node`` attributes), so
        the one-tree-per-job invariant survives workflow nesting.
        """
        result = DagmanRun(dag)
        dag_name = getattr(dag, "name", "dag")
        workflow = self.tracer.start_trace(
            f"dag:{dag_name}", kind="workflow", nodes=len(dag),
        )
        #: node_id -> in-flight handle
        in_flight: Dict[str, GridJobHandle] = {}
        node_spans: Dict[str, object] = {}

        while True:
            # Submit every READY node within the idle throttle.
            for node in dag.refresh_ready():
                if len(in_flight) >= self.max_idle:
                    break
                node.state = NodeState.SUBMITTED
                node.attempts_used += 1
                handle = self.condorg.submit(
                    node.spec, node.pin_site,
                    trace_attrs={"dag": dag_name, "node": node.node_id},
                )
                in_flight[node.node_id] = handle
                node_spans[node.node_id] = workflow.child(
                    node.node_id, phase="dag-node",
                    trace_id=handle.trace.trace_id,
                )
            if not in_flight:
                break
            # Wait for any in-flight node to finish.
            yield AnyOf(self.engine, [h.done for h in in_flight.values()])
            finished = [
                (node_id, handle)
                for node_id, handle in in_flight.items()
                if handle.done.triggered
            ]
            for node_id, handle in finished:
                del in_flight[node_id]
                node = dag.node(node_id)
                node_span = node_spans.pop(node_id, None)
                if handle.job is not None:
                    result.jobs.append(handle.job)
                if handle.succeeded:
                    node.state = NodeState.DONE
                    result.nodes_done += 1
                elif node.attempts_used <= node.retries:
                    # DAGMan retry: back to READY for another round.
                    node.state = NodeState.READY
                else:
                    node.state = NodeState.FAILED
                    result.nodes_failed += 1
                    result.nodes_unreachable += len(
                        dag.mark_unreachable_descendants(node_id)
                    )
                if node_span is not None:
                    node_span.finish("ok" if handle.succeeded else "error")
        self.tracer.finalize(
            workflow, "ok" if dag.succeeded else "error",
        )
        return result
