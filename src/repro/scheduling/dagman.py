"""DAGMan: dependency-ordered execution of workflow DAGs over Condor-G.

"CMS Production jobs are ... converting them to DAGs suitable for
submission to Condor-G/DAGMan" (§4.2); ATLAS and SDSS workflows are
Chimera/Pegasus DAGs run the same way (§4.1, §4.3).  The model submits
READY nodes (up to a submit throttle), retries failed nodes, marks
descendants of exhausted nodes unreachable, and reports a rescue DAG.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import AnyOf, Engine
from ..workflow.dag import DAG, DagNode, NodeState
from .condorg import CondorG, GridJobHandle


class DagmanRun:
    """Outcome record for one DAG execution."""

    def __init__(self, dag: DAG) -> None:
        self.dag = dag
        self.jobs: List = []          # final Job records, all attempts
        self.nodes_done = 0
        self.nodes_failed = 0
        self.nodes_unreachable = 0

    @property
    def succeeded(self) -> bool:
        return self.dag.succeeded

    def rescue_dag(self) -> DAG:
        """The un-done remainder, resubmittable later."""
        return self.dag.rescue_dag()


class DAGMan:
    """Executes DAGs through a Condor-G submit host."""

    def __init__(self, engine: Engine, condorg: CondorG, max_idle: int = 50) -> None:
        self.engine = engine
        self.condorg = condorg
        #: Throttle on simultaneously submitted (not yet finished) nodes,
        #: DAGMan's -maxidle/-maxjobs knob.
        self.max_idle = max_idle

    def run(self, dag: DAG):
        """Generator process: execute ``dag`` to quiescence.

        Returns a :class:`DagmanRun`.  Compose with ``yield from`` or
        wrap in ``engine.process``.
        """
        result = DagmanRun(dag)
        #: node_id -> in-flight handle
        in_flight: Dict[str, GridJobHandle] = {}

        while True:
            # Submit every READY node within the idle throttle.
            for node in dag.refresh_ready():
                if len(in_flight) >= self.max_idle:
                    break
                node.state = NodeState.SUBMITTED
                node.attempts_used += 1
                handle = self.condorg.submit(node.spec, node.pin_site)
                in_flight[node.node_id] = handle
            if not in_flight:
                break
            # Wait for any in-flight node to finish.
            yield AnyOf(self.engine, [h.done for h in in_flight.values()])
            finished = [
                (node_id, handle)
                for node_id, handle in in_flight.items()
                if handle.done.triggered
            ]
            for node_id, handle in finished:
                del in_flight[node_id]
                node = dag.node(node_id)
                if handle.job is not None:
                    result.jobs.append(handle.job)
                if handle.succeeded:
                    node.state = NodeState.DONE
                    result.nodes_done += 1
                elif node.attempts_used <= node.retries:
                    # DAGMan retry: back to READY for another round.
                    node.state = NodeState.READY
                else:
                    node.state = NodeState.FAILED
                    result.nodes_failed += 1
                    result.nodes_unreachable += len(
                        dag.mark_unreachable_descendants(node_id)
                    )
        return result
