"""Grid-wide fair-share accounting across VOs (§5, §7).

Grid3 balanced six VOs on shared facilities; the operational analogue
is the classic batch-system fair-share: track each VO's recent
resource consumption with an exponential decay, compare it to the VO's
target share, and boost under-served VOs / demote over-served ones at
match time.

:class:`FairShareLedger` holds exponentially-decayed per-VO CPU-time
usage.  Condor-G charges it when a job completes; the
:class:`~repro.scheduling.matchmaking.SiteSelector` folds the resulting
*priority factor* into its scoring so under-served VOs win contended
slots.  The ledger is pure arithmetic — no RNG, no events — so it can
be charged from any process without perturbing a stream.

Invariants (property-tested):

* decayed usage is never negative;
* the priority factor is always within ``[min_factor, max_factor]``;
* with no charges, every VO's priority factor is exactly 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.results import ReportRecord
from ..monitoring.core import MetricSample, MetricStore, make_tags
from ..sim.units import HOUR

#: Default usage half-life: yesterday's monopolisation counts half as
#: much as today's (typical production batch fair-share setting).
DEFAULT_HALF_LIFE = 24.0 * HOUR


@dataclass(frozen=True)
class FairShareStatus(ReportRecord):
    """One VO's row in the fair-share report."""

    vo: str
    target_share: float
    decayed_usage: float
    observed_share: float
    priority_factor: float
    charges: int


class FairShareLedger:
    """Exponentially-decayed per-VO usage vs target shares.

    ``targets`` maps VO -> target share; they are normalised to sum to
    1.0 (equal shares when empty).  ``charge()`` adds consumed CPU
    seconds; usage decays continuously with half-life ``half_life``, so
    a VO that stops running regains priority on its own.
    """

    def __init__(
        self,
        vos: Iterable[str],
        targets: Optional[Dict[str, float]] = None,
        half_life: float = DEFAULT_HALF_LIFE,
        min_factor: float = 0.2,
        max_factor: float = 5.0,
        store: Optional[MetricStore] = None,
    ) -> None:
        self.vos: Tuple[str, ...] = tuple(sorted(vos))
        if not self.vos:
            raise ValueError("FairShareLedger needs at least one VO")
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        raw = {vo: float((targets or {}).get(vo, 1.0)) for vo in self.vos}
        if any(v <= 0 for v in raw.values()):
            bad = {k: v for k, v in raw.items() if v <= 0}
            raise ValueError(f"target shares must be positive: {bad}")
        total = sum(raw.values())
        self.targets: Dict[str, float] = {vo: raw[vo] / total for vo in self.vos}
        self.half_life = float(half_life)
        self._decay_rate = math.log(2.0) / self.half_life
        self.min_factor = float(min_factor)
        self.max_factor = float(max_factor)
        #: ``sched.fairshare.*`` metrics land here.
        self.store = store if store is not None else MetricStore(max_samples=100_000)
        self._usage: Dict[str, float] = {vo: 0.0 for vo in self.vos}
        self._last_update: Dict[str, float] = {vo: 0.0 for vo in self.vos}
        self._charges: Dict[str, int] = {vo: 0 for vo in self.vos}

    # -- accounting -----------------------------------------------------
    def _decay_to(self, vo: str, now: float) -> float:
        """Decay ``vo``'s stored usage forward to ``now`` and return it."""
        last = self._last_update[vo]
        if now > last:
            self._usage[vo] *= math.exp(-self._decay_rate * (now - last))
            self._last_update[vo] = now
        # Floating-point decay of a non-negative value stays
        # non-negative, but clamp so the invariant survives any caller.
        if self._usage[vo] < 0.0:
            self._usage[vo] = 0.0
        return self._usage[vo]

    def charge(self, vo: str, cpu_seconds: float, now: float) -> None:
        """Charge ``cpu_seconds`` of consumption to ``vo`` at time ``now``."""
        if vo not in self._usage:
            return
        self._decay_to(vo, now)
        self._usage[vo] += max(0.0, float(cpu_seconds))
        self._charges[vo] += 1
        self.store.append(MetricSample(
            now, "sched.fairshare.usage", self._usage[vo], make_tags(vo=vo),
        ))
        self.store.append(MetricSample(
            now, "sched.fairshare.priority", self.priority_factor(vo, now),
            make_tags(vo=vo),
        ))

    def decayed_usage(self, vo: str, now: float) -> float:
        """``vo``'s usage decayed to ``now`` (never negative)."""
        if vo not in self._usage:
            return 0.0
        return self._decay_to(vo, now)

    def observed_share(self, vo: str, now: float) -> float:
        """``vo``'s fraction of total decayed usage (its target when the
        grid is idle, so an idle grid implies factor 1.0 everywhere)."""
        total = sum(self._decay_to(v, now) for v in self.vos)
        if total <= 0.0:
            return self.targets.get(vo, 0.0)
        return self._decay_to(vo, now) / total

    def priority_factor(self, vo: str, now: float) -> float:
        """target/observed share ratio, clipped to [min, max].

        > 1 boosts an under-served VO, < 1 demotes an over-served one;
        exactly 1.0 when usage matches targets (or nothing has run).
        """
        target = self.targets.get(vo)
        if target is None:
            return 1.0
        observed = self.observed_share(vo, now)
        if observed <= 0.0:
            return self.max_factor
        return min(self.max_factor, max(self.min_factor, target / observed))

    # -- reports --------------------------------------------------------
    def report(self, now: float) -> List[FairShareStatus]:
        """Per-VO fair-share rows (sorted by VO name)."""
        return [
            FairShareStatus(
                vo=vo,
                target_share=self.targets[vo],
                decayed_usage=self._decay_to(vo, now),
                observed_share=self.observed_share(vo, now),
                priority_factor=self.priority_factor(vo, now),
                charges=self._charges[vo],
            )
            for vo in self.vos
        ]
