"""Local resource managers: the site batch systems (§5).

"Appropriate policies were implemented at each local batch scheduler
(OpenPBS, Condor, and LSF)".  :class:`BatchScheduler` is the common
machinery — queueing, dispatch onto cluster nodes, walltime enforcement,
node-failure handling, completion bookkeeping — and the three flavours
in :mod:`repro.scheduling.flavors` override only the *ordering policy*.

The actual work a job does (staging, compute, archiving) is supplied by
the grid layer as a ``runner`` callable returning a generator; the
default runner is pure compute.  This keeps the LRM agnostic of grid
middleware, as in the real system.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.job import Job, JobState
from ..errors import (
    NodeFailureError,
    SubmissionError,
    WalltimeExceededError,
)
from ..sim.engine import AnyOf, Engine, Interrupt, Process


def default_runner(engine: Engine, job: Job, node) -> "generator":
    """Pure-compute job body: occupy the CPU for the spec's runtime."""
    if job.spec.runtime > 0:
        yield engine.timeout(job.spec.runtime)


class BatchScheduler:
    """Queue + dispatcher over one site's cluster.

    Subclasses override :meth:`_pick_next` to implement their policy.
    """

    #: Flavour name, overridden by subclasses ("pbs" | "condor" | "lsf").
    flavour = "fifo"

    def __init__(
        self,
        engine: Engine,
        site,
        runner: Optional[Callable] = None,
    ) -> None:
        self.engine = engine
        self.site = site
        self.runner = runner or default_runner
        self._queue: List[Job] = []
        #: job_id -> (job, node, body process)
        self._running: Dict[int, tuple] = {}
        #: Observers called as fn(job) on every terminal transition; the
        #: gatekeeper, ACDC monitor, and app frameworks all subscribe.
        self.on_job_complete: List[Callable[[Job], None]] = []
        #: Completed job records retained for ACDC's pull harvesting.
        self.completed: List[Job] = []
        #: Lifetime counters.
        self.submitted_count = 0
        self.rejected_count = 0
        self.peak_running = 0

    # -- introspection -----------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Jobs waiting for a CPU."""
        return len(self._queue)

    @property
    def running_count(self) -> int:
        """Jobs currently on worker nodes."""
        return len(self._running)

    def running_jobs(self) -> List[Job]:
        """Snapshot of running jobs."""
        return [entry[0] for entry in self._running.values()]

    def queued_jobs(self) -> List[Job]:
        """Snapshot of queued jobs in arrival order."""
        return list(self._queue)

    # -- submission ----------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Accept a job into the queue.

        Rejects (SubmissionError) jobs whose walltime request exceeds the
        site limit — §6.4 criterion 3: "queue managed Grid3 resources
        required every computational job to specify the runtime requested
        which may not have been long enough for the proposed task."
        """
        if job.spec.walltime_request > self.site.config.max_walltime:
            self.rejected_count += 1
            raise SubmissionError(
                f"{self.site.name}: walltime request "
                f"{job.spec.walltime_request:.0f}s exceeds site limit "
                f"{self.site.config.max_walltime:.0f}s"
            )
        job.site_name = self.site.name
        if job.submitted_at < 0:
            job.mark(JobState.PENDING, self.engine.now)
        job.completion = self.engine.event()
        self._queue.append(job)
        self.submitted_count += 1
        self._dispatch()
        return job

    def cancel(self, job: Job) -> None:
        """Remove a queued job or kill a running one."""
        if job in self._queue:
            self._queue.remove(job)
            self._finish(job, error=SubmissionError("cancelled while queued"))
            return
        entry = self._running.get(job.job_id)
        if entry is not None:
            _job, _node, body = entry
            if body.is_alive:
                body.interrupt(SubmissionError("cancelled by client"))

    # -- policy hook ------------------------------------------------------------
    def _pick_next(self) -> Optional[int]:
        """Index into the queue of the next job to start (None = hold).

        Base policy: FIFO.
        """
        return 0 if self._queue else None

    # -- dispatch ----------------------------------------------------------------
    def _dispatch(self) -> None:
        while self._queue and self.site.cluster.free_cpus > 0:
            idx = self._pick_next()
            if idx is None:
                return
            job = self._queue.pop(idx)
            self._start(job)

    def _start(self, job: Job) -> None:
        # Allocate the CPU slot *synchronously* so the dispatch loop's
        # free_cpus check stays truthful within one pass.
        node = self.site.cluster.allocate(job.job_id)
        if node is None:  # pragma: no cover - guarded by the caller
            self._queue.insert(0, job)
            return
        body = self.engine.process(
            self.runner(self.engine, job, node), name=f"body-{job.job_id}"
        )
        # Register the body so node failures interrupt it.
        node.running[job.job_id] = body
        job.node_id = node.node_id
        job.mark(JobState.ACTIVE, self.engine.now)
        self._running[job.job_id] = (job, node, body)
        self.peak_running = max(self.peak_running, len(self._running))
        self.engine.process(self._supervise(job, node, body), name=f"job-{job.job_id}")

    def _supervise(self, job: Job, node, body):
        """Walltime-limited execution of the job body on a node."""
        limit = min(job.spec.walltime_request, self.site.config.max_walltime)
        walltimer = self.engine.timeout(limit)
        error: Optional[BaseException] = None
        try:
            outcome = yield AnyOf(self.engine, [body, walltimer])
            if body.is_alive:
                # The walltimer fired first: batch system kills the job.
                body.interrupt("walltime exceeded")
                error = WalltimeExceededError(
                    f"{self.site.name}: killed at {limit:.0f}s walltime limit"
                )
        except Interrupt as intr:
            # Interrupts carry either a typed exception (service failure,
            # cancel, ...) or a plain cause (node rollover/failure).
            if isinstance(intr.cause, BaseException):
                error = intr.cause
            else:
                error = NodeFailureError(str(intr.cause))
        except Exception as exc:  # noqa: BLE001 - job body failures
            error = exc
        finally:
            self.site.cluster.release(node, job.job_id)
            self._running.pop(job.job_id, None)
        self._finish(job, error)
        self._dispatch()

    def _finish(self, job: Job, error: Optional[BaseException]) -> None:
        if error is None:
            job.mark(JobState.DONE, self.engine.now)
        else:
            job.error = error
            job.mark(JobState.FAILED, self.engine.now)
        self.completed.append(job)
        if job.completion is not None and not job.completion.triggered:
            job.completion.succeed(job)
        for observer in self.on_job_complete:
            observer(job)

    def interrupt_all(self, cause: BaseException) -> int:
        """Kill every running job (§6.2: 'a service would fail and all
        jobs submitted to a site would die').  Returns the body count."""
        count = 0
        for _job, _node, body in list(self._running.values()):
            if body.is_alive:
                body.interrupt(cause)
                count += 1
        return count

    def drain_completed(self, since_index: int = 0) -> List[Job]:
        """Completed records from ``since_index`` on (ACDC pull model)."""
        return self.completed[since_index:]

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.site.name} "
            f"run={self.running_count} queue={self.queue_length}>"
        )
