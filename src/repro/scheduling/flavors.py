"""The three Grid3 batch flavours: OpenPBS, Condor, LSF (§5).

Each flavour is the common :class:`~repro.scheduling.batch.BatchScheduler`
machinery with its characteristic *ordering policy*:

* **PBS** — FIFO with an optional per-job priority attribute (qsub -p).
* **Condor** — fair-share: users who have consumed less recent CPU go
  first (a decayed-usage model of Condor's effective user priority).
* **LSF** — class-based queues: short jobs (by requested walltime) are
  served from a higher-priority queue than long ones.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.job import Job
from ..sim.engine import Engine
from ..sim.units import HOUR
from .batch import BatchScheduler


class PBSScheduler(BatchScheduler):
    """OpenPBS: FIFO within priority levels."""

    flavour = "pbs"

    #: Priority attribute name read off the spec (higher runs first);
    #: absent = 0, matching qsub's default.
    def _pick_next(self) -> Optional[int]:
        if not self._queue:
            return None
        best_idx = 0
        best_prio = getattr(self._queue[0].spec, "priority", 0)
        for idx, job in enumerate(self._queue):
            prio = getattr(job.spec, "priority", 0)
            if prio > best_prio:
                best_idx, best_prio = idx, prio
        return best_idx


class CondorScheduler(BatchScheduler):
    """Condor: decayed-usage fair share across users.

    Every completed job adds its CPU time to the user's usage; usage
    decays exponentially with a half-life, and the queued job whose user
    has the lowest current usage starts first.  This reproduces Condor's
    effective-user-priority behaviour to first order and is what lets
    the low-priority Exerciser (§4.7) backfill without starving science
    users.
    """

    flavour = "condor"

    def __init__(self, engine: Engine, site, runner=None,
                 usage_half_life: float = 24 * HOUR) -> None:
        super().__init__(engine, site, runner)
        self.usage_half_life = usage_half_life
        self._usage: Dict[str, float] = {}
        self._usage_at: Dict[str, float] = {}
        self.on_job_complete.append(self._account)

    def _decayed_usage(self, user: str) -> float:
        usage = self._usage.get(user, 0.0)
        if usage == 0.0:
            return 0.0
        age = self.engine.now - self._usage_at.get(user, self.engine.now)
        return usage * 0.5 ** (age / self.usage_half_life)

    def _account(self, job: Job) -> None:
        user = job.spec.user
        self._usage[user] = self._decayed_usage(user) + job.cpu_time
        self._usage_at[user] = self.engine.now

    def _pick_next(self) -> Optional[int]:
        if not self._queue:
            return None
        # Nice-user jobs (the Exerciser) only run when nothing else waits.
        normal = [
            (self._decayed_usage(job.spec.user), idx)
            for idx, job in enumerate(self._queue)
            if not getattr(job.spec, "nice_user", False)
        ]
        if normal:
            return min(normal)[1]
        return 0  # only nice-user jobs queued: backfill FIFO


class LSFScheduler(BatchScheduler):
    """LSF: class-based queues — short / medium / long by requested
    walltime, served strictly in that order, FIFO within a class."""

    flavour = "lsf"

    SHORT = 4 * HOUR
    MEDIUM = 24 * HOUR

    def _queue_class(self, job: Job) -> int:
        wt = job.spec.walltime_request
        if wt <= self.SHORT:
            return 0
        if wt <= self.MEDIUM:
            return 1
        return 2

    def _pick_next(self) -> Optional[int]:
        if not self._queue:
            return None
        return min(
            range(len(self._queue)),
            key=lambda idx: (self._queue_class(self._queue[idx]), idx),
        )


#: Map from a SiteConfig.batch_system string to the scheduler class.
FLAVOURS = {
    "pbs": PBSScheduler,
    "condor": CondorScheduler,
    "lsf": LSFScheduler,
}


def make_scheduler(engine: Engine, site, runner=None) -> BatchScheduler:
    """Instantiate the right flavour for a site's configured batch system."""
    cls = FLAVOURS.get(site.config.batch_system, BatchScheduler)
    return cls(engine, site, runner)
