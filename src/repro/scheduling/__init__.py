"""Scheduling: local batch systems, Condor-G/DAGMan, site selection,
usage policies, and grid-wide fair-share."""

from .batch import BatchScheduler, default_runner
from .condorg import CondorG, GridJobHandle
from .dagman import DAGMan, DagmanRun
from .fairshare import DEFAULT_HALF_LIFE, FairShareLedger, FairShareStatus
from .flavors import (
    FLAVOURS,
    CondorScheduler,
    LSFScheduler,
    PBSScheduler,
    make_scheduler,
)
from .localload import LocalLoadGenerator, add_local_load
from .matchmaking import RandomSelector, SiteSelector
from .policy import (
    POLICY_SETS,
    PolicyEngine,
    PolicyRejectRow,
    ShareCapRow,
    UsagePolicy,
    open_policies,
    paper_policies,
)

__all__ = [
    "BatchScheduler",
    "CondorG",
    "CondorScheduler",
    "DAGMan",
    "DEFAULT_HALF_LIFE",
    "DagmanRun",
    "FLAVOURS",
    "FairShareLedger",
    "FairShareStatus",
    "GridJobHandle",
    "LSFScheduler",
    "LocalLoadGenerator",
    "PBSScheduler",
    "POLICY_SETS",
    "PolicyEngine",
    "PolicyRejectRow",
    "RandomSelector",
    "ShareCapRow",
    "SiteSelector",
    "UsagePolicy",
    "add_local_load",
    "default_runner",
    "make_scheduler",
    "open_policies",
    "paper_policies",
]
