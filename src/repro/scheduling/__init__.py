"""Scheduling: local batch systems, Condor-G/DAGMan, site selection."""

from .batch import BatchScheduler, default_runner
from .condorg import CondorG, GridJobHandle
from .dagman import DAGMan, DagmanRun
from .flavors import (
    FLAVOURS,
    CondorScheduler,
    LSFScheduler,
    PBSScheduler,
    make_scheduler,
)
from .localload import LocalLoadGenerator, add_local_load
from .matchmaking import RandomSelector, SiteSelector

__all__ = [
    "BatchScheduler",
    "CondorG",
    "CondorScheduler",
    "DAGMan",
    "DagmanRun",
    "FLAVOURS",
    "GridJobHandle",
    "LSFScheduler",
    "LocalLoadGenerator",
    "PBSScheduler",
    "RandomSelector",
    "SiteSelector",
    "add_local_load",
    "default_runner",
    "make_scheduler",
]
