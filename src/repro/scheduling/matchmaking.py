"""Requirement-driven site selection (§6.4).

The paper lists the four requirements that "drove how users selected
sites":

  1. Internet connectivity of compute nodes;
  2. Availability of required disk space;
  3. Maximum allowable runtime;
  4. Gatekeeper network bandwidth capacity.

plus two observed behaviours: "applications tend to favor the resources
provided within their VO" and "application demonstrators tended to have
'favorite' Grid3 resources and submitted more computational jobs to
them."  :class:`SiteSelector` implements all six: hard filters for the
four requirements, then a score with VO-affinity and favourite-site
stickiness terms.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.job import JobSpec
from ..middleware.mds import GIIS
from ..sim.rng import RngRegistry


class SiteSelector:
    """Ranks Grid3 sites for a job spec using MDS information."""

    def __init__(
        self,
        giis: GIIS,
        rng: RngRegistry,
        vo_affinity_weight: float = 1.8,
        favorite_weight: float = 1.5,
        bandwidth_weight: float = 1.0,
        free_cpu_weight: float = 2.0,
        jitter: float = 1.0,
        exploration: float = 0.07,
        fairshare=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.giis = giis
        self.rng = rng
        #: Optional :class:`~repro.scheduling.fairshare.FairShareLedger`.
        #: When set, the free-CPU term is scaled by the submitting VO's
        #: priority factor: under-served VOs chase free capacity harder,
        #: over-served VOs fall back on affinity and favourites.
        self.fairshare = fairshare
        self.clock = clock
        self.vo_affinity_weight = vo_affinity_weight
        self.favorite_weight = favorite_weight
        self.bandwidth_weight = bandwidth_weight
        self.free_cpu_weight = free_cpu_weight
        self.jitter = jitter
        #: Fraction of selections that pick a random admissible site —
        #: users occasionally try unfamiliar resources, which is how the
        #: Table 1 "Grid3 Sites Used" counts got as wide as they did
        #: despite strong favourite-site concentration.
        self.exploration = exploration
        #: (vo, user) -> {site: submissions so far}; drives stickiness.
        self._favorites: Dict[Tuple[str, str], Dict[str, int]] = {}

    # -- the four hard requirements (§6.4) ----------------------------------
    @staticmethod
    def admissible(record: Dict[str, object], spec: JobSpec) -> bool:
        """Whether a site record passes the §6.4 requirement filters."""
        if record.get("status") != "online":
            return False
        # Criterion 1: outbound connectivity.
        if spec.requires_outbound and not record.get("outbound_connectivity"):
            return False
        # Criterion 2: disk space for the job's footprint.
        if float(record.get("se_free", 0.0)) < spec.local_disk_footprint:
            return False
        # Criterion 3: the walltime request must fit the site limit.
        if spec.walltime_request > float(record.get("max_walltime", 0.0)):
            return False
        return True

    def candidates(self, spec: JobSpec, exclude: Sequence[str] = ()) -> List[Dict[str, object]]:
        """Admissible site records for a spec, excluding named sites.

        Iterates the GIIS's cached *active* (online) snapshot rather
        than sweeping the whole index per selection: offline records
        would fail :meth:`admissible` anyway, so the subsequence of
        admissible candidates — and hence the per-candidate RNG draw
        order — is unchanged, at O(active sites) per selection.
        """
        excluded = set(exclude)
        return [
            rec
            for rec in self.giis.active_records()
            if rec["site"] not in excluded and self.admissible(rec, spec)
        ]

    # -- scoring ----------------------------------------------------------------
    def _score(self, record: Dict[str, object], spec: JobSpec) -> float:
        total = max(1, int(record.get("total_cpus", 1)))
        free_frac = int(record.get("free_cpus", 0)) / total
        # Criterion 4: prefer high-bandwidth gatekeepers, log-scaled
        # (100 Mbit vs 1 Gbit matters; 1 Gbit vs 1.1 Gbit doesn't).
        bandwidth = max(1.0, float(record.get("access_bandwidth", 1.0)))
        bw_term = math.log10(bandwidth) / 9.0  # ~[0.7, 1] over real links
        # Data-heavy jobs weigh bandwidth more.
        data_intensity = 1.0 if spec.input_bytes + spec.output_bytes > 1e9 else 0.3
        score = self.bandwidth_weight * bw_term * data_intensity
        free_weight = self.free_cpu_weight
        if self.fairshare is not None:
            now = self.clock() if self.clock is not None else 0.0
            free_weight *= self.fairshare.priority_factor(spec.vo, now)
        score += free_weight * free_frac
        # §8 "Job Resource Requirements": use published wait estimates
        # when sites provide them (an hour of expected queueing costs a
        # point).
        wait = float(record.get("estimated_wait", 0.0))
        score -= min(2.0, wait / 3600.0)
        if record.get("owner_vo") == spec.vo:
            score += self.vo_affinity_weight
        favs = self._favorites.get((spec.vo, spec.user), {})
        count = favs.get(record["site"], 0)
        if count:
            total_count = sum(favs.values())
            score += self.favorite_weight * (count / total_count)
        score += self.rng.uniform("matchmaker.jitter", 0.0, self.jitter)
        return score

    def rank(self, spec: JobSpec, exclude: Sequence[str] = ()) -> List[str]:
        """Admissible sites, best first."""
        scored = [
            (self._score(rec, spec), str(rec["site"]))
            for rec in self.candidates(spec, exclude)
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [site for _score, site in scored]

    def select(self, spec: JobSpec, exclude: Sequence[str] = ()) -> Optional[str]:
        """The best admissible site, or None when nothing qualifies.

        With probability ``exploration`` a uniformly random admissible
        site is returned instead of the top-ranked one.
        """
        ranked = self.rank(spec, exclude)
        if not ranked:
            return None
        if len(ranked) > 1 and self.rng.bernoulli(
            "matchmaker.explore", self.exploration
        ):
            return self.rng.choice("matchmaker.explore.pick", ranked)
        return ranked[0]

    def record_use(self, vo: str, user: str, site: str) -> None:
        """Feed the favourite-site stickiness (call on each submission)."""
        favs = self._favorites.setdefault((vo, user), {})
        favs[site] = favs.get(site, 0) + 1


class RandomSelector:
    """Baseline for the matchmaking ablation: any online site, uniformly,
    ignoring all §6.4 requirements."""

    def __init__(self, giis: GIIS, rng: RngRegistry) -> None:
        self.giis = giis
        self.rng = rng

    def rank(self, spec: JobSpec, exclude: Sequence[str] = ()) -> List[str]:
        names = [
            str(rec["site"])
            for rec in self.giis.active_records()
            if rec["site"] not in set(exclude)
        ]
        return self.rng.shuffled("random-selector", names)

    def select(self, spec: JobSpec, exclude: Sequence[str] = ()) -> Optional[str]:
        ranked = self.rank(spec, exclude)
        return ranked[0] if ranked else None

    def record_use(self, vo: str, user: str, site: str) -> None:
        """No stickiness in the baseline."""
