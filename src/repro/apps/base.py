"""Shared machinery for the application demonstrators (§4, Table 1).

Each Grid3 application class is modelled as a *campaign*: a number of
work units (DAGs or single jobs) submitted over the observation window
with a monthly intensity profile calibrated to Table 1's
peak-production columns.  Submission times are pre-drawn from the named
RNG (month by weight, uniform within the month) so a campaign's total
job count is exact and its monthly histogram matches the profile in
expectation — which is what makes Figure 6 and Table 1's peak-month
rows reproducible.

The ``scale`` parameter divides work-unit counts (and is applied by the
grid builder to CPU counts symmetrically), so a laptop-scale run keeps
every *ratio* the paper reports.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.job import Job
from ..scheduling.condorg import CondorG, GridJobHandle
from ..scheduling.dagman import DAGMan, DagmanRun
from ..sim.calendar import SimCalendar
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.units import DAY

#: The Table 1 observation window: 2003-10-23 .. 2004-04-23 (183 days).
OBSERVATION_DAYS = 183.0


@dataclass
class AppContext:
    """Everything an application needs from the built grid."""

    engine: Engine
    rng: RngRegistry
    calendar: SimCalendar
    condorg: Dict[str, CondorG]          # per-VO submit hosts
    dagman: Dict[str, DAGMan]
    rls: object
    sites: Dict[str, object]
    ledger: object = None                # TransferLedger or None
    scale: float = 1.0
    #: Campaign horizon in sim-seconds (defaults to the Table 1 window).
    duration: float = OBSERVATION_DAYS * DAY
    #: ReplicaSelector when the managed data subsystem is on, else None
    #: (planners then use their deterministic fallback).
    replica_selector: object = None


class AppStats:
    """Aggregated outcomes for one application class."""

    def __init__(self) -> None:
        self.units_submitted = 0
        self.jobs: List[Job] = []

    def add_jobs(self, jobs: Sequence[Job]) -> None:
        self.jobs.extend(jobs)

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    @property
    def succeeded(self) -> int:
        return sum(1 for j in self.jobs if j.succeeded)

    @property
    def failed(self) -> int:
        return sum(1 for j in self.jobs if j.failed)

    @property
    def success_rate(self) -> float:
        return self.succeeded / len(self.jobs) if self.jobs else 0.0

    @property
    def failure_rate(self) -> float:
        return 1.0 - self.success_rate if self.jobs else 0.0

    def failure_breakdown(self) -> Dict[str, int]:
        """Failed jobs by category ("site" / "application" / ...)."""
        out: Dict[str, int] = {}
        for job in self.jobs:
            if job.failed:
                category = job.failure_category or "infrastructure"
                out[category] = out.get(category, 0) + 1
        return out

    @property
    def site_failure_fraction(self) -> float:
        """Of all failures, the fraction attributed to sites (§6.1: ~90 %)."""
        breakdown = self.failure_breakdown()
        total = sum(breakdown.values())
        return breakdown.get("site", 0) / total if total else 0.0


class ApplicationDemonstrator:
    """Base class: campaign scheduling plus outcome accounting.

    Subclasses define ``vo``, ``name``, the monthly profile, the
    full-scale unit count, and :meth:`run_unit` (a generator executing
    one work unit and returning its Job records).
    """

    #: Override in subclasses.
    name = "base"
    vo = "ivdgl"
    #: month label -> relative submission intensity (normalised at use).
    monthly_profile: Dict[str, float] = {}
    #: Full-scale number of work units over the observation window.
    total_units = 0
    #: Registered users (Table 1's "Number of Users" row).
    users: Tuple[str, ...] = ()

    def __init__(self, ctx: AppContext) -> None:
        self.ctx = ctx
        self.stats = AppStats()
        self.process = None

    # -- campaign schedule ----------------------------------------------------
    def _month_bounds(self) -> List[Tuple[str, float, float]]:
        """(label, start, end) for each month overlapping the window."""
        cal = self.ctx.calendar
        out = []
        for label in cal.month_labels(self.ctx.duration):
            month, year = int(label[:2]), int(label[3:])
            start_dt = _dt.datetime(year, month, 1)
            end_dt = _dt.datetime(
                year + (month == 12), month % 12 + 1, 1
            )
            t0 = max(0.0, cal.sim_time_of(start_dt))
            t1 = min(self.ctx.duration, cal.sim_time_of(end_dt))
            if t1 > t0:
                out.append((label, t0, t1))
        return out

    def scaled_units(self) -> int:
        """Work units for this run (full-scale count / scale, >= 1)."""
        if self.total_units <= 0:
            return 0
        return max(1, int(round(self.total_units / self.ctx.scale)))

    def submission_times(self) -> List[float]:
        """Pre-drawn, sorted submission instants for every work unit."""
        months = self._month_bounds()
        if not months:
            return []
        labels = [m[0] for m in months]
        weights = [self.monthly_profile.get(label, 0.01) for label in labels]
        rng = self.ctx.rng
        times = []
        for i in range(self.scaled_units()):
            label = rng.choice(f"app.{self.name}.month", labels, weights=weights)
            _label, t0, t1 = next(m for m in months if m[0] == label)
            times.append(rng.uniform(f"app.{self.name}.when", t0, t1))
        return sorted(times)

    # -- execution ------------------------------------------------------------
    def run_unit(self, index: int):
        """Generator: execute one work unit, return a list of Jobs."""
        raise NotImplementedError

    def _unit_wrapper(self, index: int):
        jobs = yield from self.run_unit(index)
        if jobs:
            self.stats.add_jobs(jobs)

    def _campaign(self):
        engine = self.ctx.engine
        for index, when in enumerate(self.submission_times()):
            delay = when - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            self.stats.units_submitted += 1
            engine.process(
                self._unit_wrapper(index), name=f"{self.name}-unit{index}"
            )

    def start(self) -> None:
        """Launch the campaign (returns immediately)."""
        self.process = self.ctx.engine.process(
            self._campaign(), name=f"app-{self.name}"
        )

    # -- helpers for subclasses -----------------------------------------------
    def submit_and_wait(self, spec, site_name: Optional[str] = None):
        """Generator: one Condor-G submission, returns [final Job]."""
        handle: GridJobHandle = self.ctx.condorg[self.vo].submit(spec, site_name)
        final = yield handle.done
        return [final]

    def run_dag(self, dag) -> "generator":
        """Generator: run a DAG through this VO's DAGMan, returns Jobs."""
        result: DagmanRun = yield from self.ctx.dagman[self.vo].run(dag)
        return result.jobs
