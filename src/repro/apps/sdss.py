"""SDSS: galaxy-cluster finding and pixel-level analysis (§4.3).

"A search for galaxy clusters in SDSS data resulted in workflows with
several thousand processing steps organized by Chimera virtual data
tools."  Each campaign unit is one maxBcg-style workflow over a batch
of sky fields: a field-preparation step fans out into per-field cluster
searches, merged by a catalog step.  A minority of units are the other
§4.3 applications (pixel-level cutout analysis, near-earth-asteroid
scans) — structurally flat fan-outs.

Table 1 calibration: 5 410 jobs, 9 users, mean runtime 1.46 h, peak
month 02-2004 (SDSS ramped *later* than the LHC experiments).
"""

from __future__ import annotations

from ..sim.units import GB, HOUR, MB
from ..workflow.chimera import Derivation, Transformation, VirtualDataCatalog
from ..workflow.pegasus import PegasusPlanner
from .base import ApplicationDemonstrator, AppContext

APP_FAILURE_PROBABILITY = 0.02

#: Mean per-step runtimes; mixture mean ~1.46 h (Table 1).
PREP_RUNTIME = 0.8 * HOUR
SEARCH_RUNTIME = 1.5 * HOUR
MERGE_RUNTIME = 1.0 * HOUR


class SDSSApplication(ApplicationDemonstrator):
    """Chimera cluster-finding workflows."""

    name = "sdss-coadd"
    vo = "sdss"
    #: 5410 jobs at ~14 steps per workflow ~ 386 workflows.
    total_units = 386
    monthly_profile = {
        "10-2003": 0.04, "11-2003": 0.10, "12-2003": 0.08, "01-2004": 0.14,
        "02-2004": 0.40, "03-2004": 0.14, "04-2004": 0.10,
    }
    users = tuple(f"sdss-user{i}" for i in range(9))

    #: §4.3 also lists "a search for near earth asteroids, which calls
    #: for examining complete SDSS images in search of highly elongated
    #: objects" — this fraction of units run that pixel-level scan.
    NEO_FRACTION = 0.2

    def __init__(self, ctx: AppContext, archive_site: str = "FNAL_CMS",
                 mean_fields: int = 12) -> None:
        super().__init__(ctx)
        #: SDSS is Fermilab-hosted; output archives there.
        self.archive_site = archive_site
        self.mean_fields = mean_fields
        self._strips_published = 0
        self.vdc = VirtualDataCatalog()
        self.vdc.add_transformation(
            Transformation("fieldPrep", runtime=PREP_RUNTIME, staging="minimal")
        )
        self.vdc.add_transformation(
            Transformation("brgSearch", runtime=SEARCH_RUNTIME, staging="minimal")
        )
        self.vdc.add_transformation(
            Transformation("clusterCatalog", runtime=MERGE_RUNTIME, staging="minimal")
        )
        self.planner = PegasusPlanner(ctx.rls, ctx.rng, selector=ctx.replica_selector)

    def _workflow_dax(self, index: int):
        """fieldPrep -> N x brgSearch -> clusterCatalog."""
        rid = f"sdss{index:05d}"
        n_fields = max(
            4, int(self.ctx.rng.lognormal_from_mean("sdss.fields", self.mean_fields, 0.4))
        )
        self.vdc.add_derivation(
            Derivation(f"prep-{rid}", "fieldPrep",
                       outputs=((f"/sdss/{rid}/fields", 200 * MB),))
        )
        search_outputs = []
        for f in range(n_fields):
            out = (f"/sdss/{rid}/clusters-{f:03d}", 30 * MB)
            search_outputs.append(out)
            self.vdc.add_derivation(
                Derivation(f"search-{rid}-{f:03d}", "brgSearch",
                           inputs=(f"/sdss/{rid}/fields",),
                           outputs=(out,))
            )
        self.vdc.add_derivation(
            Derivation(f"merge-{rid}", "clusterCatalog",
                       inputs=tuple(lfn for lfn, _ in search_outputs),
                       outputs=((f"/sdss/{rid}/catalog", 100 * MB),))
        )
        return self.vdc.derive([f"/sdss/{rid}/catalog"])

    def _ensure_image_strip(self, strip: int) -> tuple:
        """Publish an SDSS imaging strip at the archive (idempotent);
        returns (lfn, size).  NEO scans read "complete SDSS images"."""
        from ..sim.units import GB
        lfn = f"/sdss/images/strip-{strip:03d}"
        size = 1.5 * GB
        site = self.ctx.sites[self.archive_site]
        if lfn not in site.storage:
            site.storage.store(lfn, size)
            self.ctx.rls.register(self.archive_site, lfn, size)
            self._strips_published += 1
        return lfn, size

    def _neo_dag(self, index: int):
        """A flat pixel-scan fan-out over a few imaging strips."""
        from ..core.job import JobSpec
        from ..workflow.dag import DAG
        rng = self.ctx.rng
        dag = DAG(f"neo-{index:05d}")
        n_strips = max(2, int(rng.uniform("sdss.neo.strips", 2, 6)))
        for k in range(n_strips):
            strip = int(rng.uniform("sdss.neo.pick", 0, 100))
            lfn, size = self._ensure_image_strip(strip)
            runtime = rng.lognormal_from_mean("sdss.neo.runtime", 1.2 * HOUR, 0.3)
            dag.add_job(
                f"scan-{k}",
                JobSpec(
                    name=f"neo-{index:05d}-{k}",
                    vo=self.vo,
                    user=self.users[index % len(self.users)],
                    runtime=runtime,
                    walltime_request=max(4 * HOUR, runtime * 3),
                    inputs=((lfn, size),),
                    outputs=((f"/sdss/neo/{index:05d}-{k}.cand", 5 * MB),),
                    staging="heavy",
                    archive_site=self.archive_site,
                    app_failure_probability=APP_FAILURE_PROBABILITY,
                ),
            )
        return dag

    def run_unit(self, index: int):
        if self.ctx.rng.bernoulli("sdss.kind", self.NEO_FRACTION):
            jobs = yield from self.run_dag(self._neo_dag(index))
            return jobs
        dax = self._workflow_dax(index)
        dag = self.planner.plan(
            dax, vo=self.vo, user=self.users[index % len(self.users)],
            archive_site=self.archive_site, name=f"sdss-{index:05d}",
            app_failure_probability=APP_FAILURE_PROBABILITY,
        )
        jobs = yield from self.run_dag(dag)
        return jobs
