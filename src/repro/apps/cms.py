"""U.S. CMS: MOP production for the 2004 data challenge (§4.2, §6.2).

MCRunJob reads requests from the control database, MOP writes the
3-step DAG (Pythia → CMSIM/OSCAR → digitisation with pile-up), and
Condor-G/DAGMan executes it, archiving everything through the FNAL
Tier1 storage element.

Table 1 / §6.2 calibration: 19 354 jobs with the grid's longest mean
runtime (41.85 h — OSCAR full-detector simulation dominates); ~70 %
success; 26 users; peak month 11-2003.  The long OSCAR jobs only fit
sites with generous walltime limits, which is why CMS validated ~11
sites (§6.2) — the matchmaker reproduces this via criterion 3.
"""

from __future__ import annotations

from typing import List

from ..sim.units import HOUR
from ..workflow.mop import MOP, ControlDatabase
from .base import ApplicationDemonstrator, AppContext

#: §6.2: "Approximately 70% of CMSIM and OSCAR jobs completed
#: successfully" — most failures are site-caused and emerge from the
#: substrate; the application's own share is small.
APP_FAILURE_PROBABILITY = 0.04


class CMSApplication(ApplicationDemonstrator):
    """MCRunJob/MOP production over the control database."""

    name = "uscms-mop"
    vo = "uscms"
    #: 19354 jobs / 3 per chain ~ 6451 chains.
    total_units = 6451
    monthly_profile = {
        "10-2003": 0.08, "11-2003": 0.30, "12-2003": 0.17, "01-2004": 0.13,
        "02-2004": 0.12, "03-2004": 0.10, "04-2004": 0.10,
    }
    users = tuple(f"cms-user{i:02d}" for i in range(26))

    def __init__(
        self,
        ctx: AppContext,
        archive_site: str = "FNAL_CMS",
        oscar_fraction: float = 0.75,
        mean_events: int = 900,
    ) -> None:
        super().__init__(ctx)
        self.archive_site = archive_site
        self.oscar_fraction = oscar_fraction
        self.mean_events = mean_events
        self.control_db = ControlDatabase()
        self.mop = MOP(ctx.rng, archive_site=archive_site)
        self._fill_control_db()

    def _fill_control_db(self) -> None:
        """MCRunJob's input: one request per campaign unit."""
        rng = self.ctx.rng
        for _ in range(self.scaled_units()):
            simulator = (
                "oscar"
                if rng.bernoulli("cms.simulator", self.oscar_fraction)
                else "cmsim"
            )
            n_events = max(
                50,
                int(rng.lognormal_from_mean("cms.nevents", self.mean_events, 0.35)),
            )
            self.control_db.add_request(n_events, simulator)

    def run_unit(self, index: int):
        request = self.control_db.next_pending()
        if request is None:
            return []
        dag = self.mop.dag_for(
            request,
            user=self.users[index % len(self.users)],
            app_failure_probability=APP_FAILURE_PROBABILITY,
        )
        jobs = yield from self.run_dag(dag)
        if all(j.succeeded for j in jobs) and jobs:
            self.control_db.mark_completed(request.request_id)
        return jobs

    @property
    def simulated_events(self) -> int:
        """Events in fully completed requests (the paper's '14 million
        GEANT4 full detector simulation events' counter, §6.2)."""
        return self.control_db.completed_events()
