"""The Condor exerciser: the grid's heartbeat probe (§4.7).

"An exerciser backfill application provided by the Condor group tested
the status of the batch systems and operation characteristics of each
Grid3 site.  This application ran repeatedly with a low priority at 15
minute intervals."

Unlike the science campaigns, the exerciser is interval-driven: every
cycle it submits one ``nice_user`` (backfill-only) probe to every
online site.  Table 1 shows the consequence: 198 272 jobs — two thirds
of all Grid3 job records — at 0.13 h mean runtime from 3 users.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.job import Job, JobSpec
from ..sim.units import HOUR, MINUTE
from .base import ApplicationDemonstrator, AppContext

#: §4.7: the probing cadence.
PROBE_INTERVAL = 15 * MINUTE
#: Table 1: mean runtime 0.13 h ~ 8 minutes.
PROBE_RUNTIME = 8 * MINUTE


class ExerciserApplication(ApplicationDemonstrator):
    """Low-priority backfill probes of every site's batch system."""

    name = "exerciser"
    vo = "ivdgl"  # the CS demonstrators ran under the iVDGL VO
    users = ("condor-ex1", "condor-ex2", "condor-ex3")
    #: Interval-driven, not campaign-driven: total_units unused.
    total_units = 0

    def __init__(self, ctx: AppContext, probe_sites: List[str] = None) -> None:
        super().__init__(ctx)
        #: Sites to probe; Table 1 shows the exerciser used 14 sites.
        self.probe_sites = probe_sites
        #: (site -> consecutive probe failures) — the exerciser's whole
        #: point was detecting broken batch systems.
        self.consecutive_failures: Dict[str, int] = {}
        self._cycle = 0

    def _targets(self) -> List[str]:
        if self.probe_sites is not None:
            return [
                name for name in self.probe_sites
                if name in self.ctx.sites and self.ctx.sites[name].online
            ]
        return [name for name, s in self.ctx.sites.items() if s.online]

    def _probe_spec(self, site_name: str) -> JobSpec:
        return JobSpec(
            name=f"exerciser-{site_name}-{self._cycle}",
            vo=self.vo,
            user=self.users[self._cycle % len(self.users)],
            runtime=self.ctx.rng.lognormal_from_mean(
                "exerciser.runtime", PROBE_RUNTIME, 0.2
            ),
            walltime_request=1 * HOUR,
            staging="none",
            nice_user=True,
        )

    def _probe(self, site_name: str):
        jobs = yield from self.submit_and_wait(
            self._probe_spec(site_name), site_name
        )
        job = jobs[0]
        if job.succeeded:
            self.consecutive_failures[site_name] = 0
        else:
            self.consecutive_failures[site_name] = (
                self.consecutive_failures.get(site_name, 0) + 1
            )
        self.stats.add_jobs(jobs)

    def _campaign(self):
        engine = self.ctx.engine
        interval = PROBE_INTERVAL * self.ctx.scale
        while engine.now < self.ctx.duration:
            self._cycle += 1
            for site_name in self._targets():
                self.stats.units_submitted += 1
                engine.process(
                    self._probe(site_name),
                    name=f"exerciser-{site_name}-{self._cycle}",
                )
            yield engine.timeout(interval)

    def run_unit(self, index: int):  # pragma: no cover - interval-driven
        raise NotImplementedError("the exerciser overrides _campaign")

    def broken_sites(self, threshold: int = 3) -> List[str]:
        """Sites failing their last ``threshold`` probes — the signal
        the iGOC watched."""
        return sorted(
            site for site, fails in self.consecutive_failures.items()
            if fails >= threshold
        )
