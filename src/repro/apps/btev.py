"""BTeV: CP-violation Monte Carlo (§4.5).

"The workflow processing time was about 15 seconds per event on a 2GHz
machine, translating into a typical request for 2.5 million events
generated with 1000 10-hour jobs across Grid3."  Chimera provided the
physics interface; jobs were plain Monte Carlo generation with modest
output.

Table 1 calibration: 2 598 jobs from a *single user*, mean runtime
1.77 h (many short validation jobs around the 10-hour production runs,
max 118 h), 8 sites, 91 % of production in 11-2003, and 59.8 % of jobs
from one favourite resource — the strongest site-affinity in the table,
reproduced with a high favourite-site weight.
"""

from __future__ import annotations

from ..core.job import JobSpec
from ..sim.units import GB, HOUR, MB
from .base import ApplicationDemonstrator, AppContext

#: §4.5: 15 s per event on the reference CPU.
SECONDS_PER_EVENT = 15.0
#: Production jobs: 2400 events x 15 s = 10 h (the paper's shape).
PRODUCTION_EVENTS = 2400
#: Short validation/test runs dominating the Table 1 job count.
VALIDATION_EVENTS = 150

APP_FAILURE_PROBABILITY = 0.03


class BTeVApplication(ApplicationDemonstrator):
    """Single-user Monte Carlo campaigns pinned mostly to Vanderbilt."""

    name = "btev-mc"
    vo = "btev"
    total_units = 2598
    monthly_profile = {
        "10-2003": 0.02, "11-2003": 0.91, "12-2003": 0.03, "01-2004": 0.01,
        "02-2004": 0.01, "03-2004": 0.01, "04-2004": 0.01,
    }
    users = ("btev-prod",)

    def __init__(self, ctx: AppContext, home_site: str = "Vanderbilt_BTeV",
                 production_fraction: float = 0.15) -> None:
        super().__init__(ctx)
        self.home_site = home_site
        #: Fraction of units that are full 10-hour production jobs; the
        #: rest are short validation runs (mixture mean ~1.7 h).
        self.production_fraction = production_fraction
        # The paper's favourite-site behaviour: pre-seed stickiness.
        selector = ctx.condorg[self.vo].selector
        if selector is not None:
            for _ in range(8):
                selector.record_use(self.vo, self.users[0], home_site)

    def _spec(self, index: int) -> JobSpec:
        rng = self.ctx.rng
        production = rng.bernoulli("btev.production", self.production_fraction)
        events = PRODUCTION_EVENTS if production else VALIDATION_EVENTS
        runtime = rng.lognormal_from_mean(
            "btev.runtime", events * SECONDS_PER_EVENT, 0.5
        )
        out_bytes = events * 0.5 * MB
        return JobSpec(
            name=f"btev-{'prod' if production else 'val'}-{index:05d}",
            vo=self.vo,
            user=self.users[0],
            runtime=runtime,
            walltime_request=max(4 * HOUR, runtime * 2.5),
            outputs=((f"/btev/mc/{index:05d}.evts", out_bytes),),
            staging="minimal",
            archive_site=self.home_site,
            app_failure_probability=APP_FAILURE_PROBABILITY,
        )

    def run_unit(self, index: int):
        jobs = yield from self.submit_and_wait(self._spec(index))
        return jobs

    @property
    def events_generated(self) -> int:
        """Completed Monte Carlo events (target: 2.5 M at full scale)."""
        total = 0
        for job in self.stats.jobs:
            if job.succeeded:
                total += int(job.spec.runtime / SECONDS_PER_EVENT)
        return total
