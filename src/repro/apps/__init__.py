"""The Grid3 application demonstrators (§4, Table 1): the five science
experiments, the iVDGL apps, and the CS demonstrators."""

from .atlas import ATLASApplication
from .base import AppContext, ApplicationDemonstrator, AppStats, OBSERVATION_DAYS
from .btev import BTeVApplication
from .cms import CMSApplication
from .exerciser import ExerciserApplication
from .gridftp_demo import GridFTPDemoApplication
from .ivdgl import IVDGLApplication
from .ligo import LIGOApplication
from .sdss import SDSSApplication

__all__ = [
    "ATLASApplication",
    "AppContext",
    "AppStats",
    "ApplicationDemonstrator",
    "BTeVApplication",
    "CMSApplication",
    "ExerciserApplication",
    "GridFTPDemoApplication",
    "IVDGLApplication",
    "LIGOApplication",
    "OBSERVATION_DAYS",
    "SDSSApplication",
]
