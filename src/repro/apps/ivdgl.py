"""iVDGL VO applications: SnB crystallography and GADU genomics (§4.6).

SnB runs "a dual-space direct-methods procedure for determining crystal
structures" — embarrassingly parallel trial batches, each short.  GADU
"is a Genome Analysis and Databases Update Tool ... used to perform a
variety of analyses of genome data" — its jobs query external sequence
databases, so its workers need outbound internet connectivity (the very
reason §6.4 lists criterion 1).

Table 1 calibration: 58 145 jobs (the biggest science-VO job count),
24 users, mean runtime 1.22 h, 19 sites (the broadest footprint), peak
11-2003 with 88.1 % from the ACDC resource — iVDGL jobs strongly
favoured Buffalo, reproduced with heavy stickiness.
"""

from __future__ import annotations

from ..core.job import JobSpec
from ..sim.units import HOUR, MB
from .base import ApplicationDemonstrator, AppContext

APP_FAILURE_PROBABILITY = 0.02


class IVDGLApplication(ApplicationDemonstrator):
    """SnB + GADU under the iVDGL VO."""

    name = "ivdgl-apps"
    vo = "ivdgl"
    total_units = 58145
    monthly_profile = {
        "10-2003": 0.03, "11-2003": 0.44, "12-2003": 0.20, "01-2004": 0.10,
        "02-2004": 0.08, "03-2004": 0.08, "04-2004": 0.07,
    }
    users = tuple(f"ivdgl-user{i:02d}" for i in range(24))

    def __init__(self, ctx: AppContext, home_site: str = "UB_ACDC",
                 gadu_fraction: float = 0.3) -> None:
        super().__init__(ctx)
        self.home_site = home_site
        self.gadu_fraction = gadu_fraction
        # Table 1: 88 % of peak production from the single ACDC
        # resource — the strongest favourite-site signal in the table.
        selector = ctx.condorg[self.vo].selector
        if selector is not None:
            for user in self.users:
                for _ in range(30):
                    selector.record_use(self.vo, user, home_site)

    def _snb_spec(self, index: int) -> JobSpec:
        """A Shake-and-Bake trial batch."""
        runtime = self.ctx.rng.lognormal_from_mean("snb.runtime", 1.1 * HOUR, 0.4)
        return JobSpec(
            name=f"snb-{index:06d}",
            vo=self.vo,
            user=self.users[index % len(self.users)],
            runtime=runtime,
            walltime_request=max(4 * HOUR, runtime * 3),
            outputs=((f"/ivdgl/snb/{index:06d}.sol", 5 * MB),),
            staging="none",
            app_failure_probability=APP_FAILURE_PROBABILITY,
        )

    def _gadu_spec(self, index: int) -> JobSpec:
        """A genome-analysis pass needing external database access."""
        runtime = self.ctx.rng.lognormal_from_mean("gadu.runtime", 1.5 * HOUR, 0.4)
        return JobSpec(
            name=f"gadu-{index:06d}",
            vo=self.vo,
            user=self.users[index % len(self.users)],
            runtime=runtime,
            walltime_request=max(4 * HOUR, runtime * 3),
            outputs=((f"/ivdgl/gadu/{index:06d}.out", 20 * MB),),
            staging="minimal",
            # §6.4 criterion 1: GADU queries databases "located outside
            # of privately addressed production nodes".
            requires_outbound=True,
            app_failure_probability=APP_FAILURE_PROBABILITY,
        )

    def run_unit(self, index: int):
        if self.ctx.rng.bernoulli("ivdgl.pick", self.gadu_fraction):
            spec = self._gadu_spec(index)
        else:
            spec = self._snb_spec(index)
        jobs = yield from self.submit_and_wait(spec)
        return jobs
