"""LIGO: blind all-sky pulsar search over the S2 data set (§4.4).

"Each search required that a conventional binary short Fourier
transform data file be accessible containing the frequency band that
the target signal spans ... data files containing the ephemeris data
for the year are staged from LIGO facilities to Grid3 sites using
GridFTP.  The location of the staged data (on average 4 GB per job) is
published in RLS ... The last job in the workflow stages the output
results back to the LIGO facility and updates database entries.  Each
workflow instance runs for several hours on an average processor."

Table 1 records only 3 tiny LIGO jobs at a single site during the
observation window (the production search ran mostly on LIGO's own
resources), so the default campaign is the small **test-mode** probe
that Table 1 actually saw; ``test_mode=False`` runs the full §4.4
search workflow with its 4 GB stage-ins and several-hour analyses.
"""

from __future__ import annotations

from ..core.job import JobSpec
from ..sim.units import GB, HOUR, MB, MINUTE
from .base import ApplicationDemonstrator, AppContext

#: §4.4: average staged data volume per search job.
SFT_BYTES_PER_JOB = 4 * GB
#: "runs for several hours on an average processor".
SEARCH_RUNTIME = 5 * HOUR


class LIGOApplication(ApplicationDemonstrator):
    """The GriPhyN-LIGO pulsar search."""

    name = "ligo-pulsar"
    vo = "ligo"
    #: Table 1: 3 jobs, all at one site, in 12-2003.
    total_units = 3
    monthly_profile = {"12-2003": 1.0}
    users = tuple(f"ligo-user{i}" for i in range(7))

    def __init__(
        self,
        ctx: AppContext,
        home_site: str = "UWM_LIGO",
        test_mode: bool = True,
        full_search_units: int = 100,
    ) -> None:
        super().__init__(ctx)
        #: The LIGO facility holding S2 SFT data and receiving results.
        self.home_site = home_site
        self.test_mode = test_mode
        if not test_mode:
            self.total_units = full_search_units
            self.monthly_profile = {
                "11-2003": 0.3, "12-2003": 0.4, "01-2004": 0.3,
            }
        self._sft_published = 0

    def _ensure_sft(self, band: int) -> str:
        """Publish the S2 SFT file for a frequency band at the home
        facility (idempotent) so search jobs can stage it."""
        lfn = f"/ligo/s2/sft-band{band:04d}"
        home = self.ctx.sites[self.home_site]
        if lfn not in home.storage:
            home.storage.store(lfn, SFT_BYTES_PER_JOB)
            self.ctx.rls.register(self.home_site, lfn, SFT_BYTES_PER_JOB)
            self._sft_published += 1
        return lfn

    def scaled_units(self) -> int:
        """LIGO unit counts are explicit, not scale-divided: Table 1's 3
        test probes would vanish under any scaling, and a full-search
        run's size is the caller's ``full_search_units`` choice."""
        return self.total_units

    def _search_spec(self, index: int) -> JobSpec:
        lfn = self._ensure_sft(index)
        runtime = self.ctx.rng.lognormal_from_mean(
            "ligo.search", SEARCH_RUNTIME, 0.3
        )
        return JobSpec(
            name=f"pulsar-search-{index:04d}",
            vo=self.vo,
            user=self.users[index % len(self.users)],
            runtime=runtime,
            walltime_request=max(12 * HOUR, runtime * 2),
            inputs=((lfn, SFT_BYTES_PER_JOB),
                    (f"/ligo/ephemeris-2003", 50 * MB)),
            outputs=((f"/ligo/s2/candidates-{index:04d}", 100 * MB),),
            staging="heavy",
            # "The last job in the workflow stages the output results
            # back to the LIGO facility and updates database entries."
            archive_site=self.home_site,
            register_outputs=True,
        )

    def _test_spec(self, index: int) -> JobSpec:
        """The tiny single-site probes Table 1 recorded (0.01 h mean)."""
        return JobSpec(
            name=f"ligo-test-{index}",
            vo=self.vo,
            user=self.users[0],
            runtime=self.ctx.rng.uniform("ligo.test", 20.0, 50.0),
            walltime_request=1 * HOUR,
            staging="none",
        )

    def run_unit(self, index: int):
        if self.test_mode:
            jobs = yield from self.submit_and_wait(
                self._test_spec(index), self.home_site
            )
            return jobs
        # Publish the ephemeris file once.
        home = self.ctx.sites[self.home_site]
        if "/ligo/ephemeris-2003" not in home.storage:
            home.storage.store("/ligo/ephemeris-2003", 50 * MB)
            self.ctx.rls.register(self.home_site, "/ligo/ephemeris-2003", 50 * MB)
        jobs = yield from self.submit_and_wait(self._search_spec(index))
        return jobs
