"""U.S. ATLAS: GCE production + DIAL analysis (§4.1, §6.1).

The workflow is the paper's three-stage chain: Pythia event generation,
GEANT-based detector simulation producing ~2 GB datasets, and
reconstruction — built through Chimera/Pegasus virtual data tools, with
every dataset "archived at the Tier1 facility at Brookhaven National
Laboratory" and registered in RLS.  Completed samples land in the DIAL
dataset catalog; a fraction of units are DIAL analysis passes over
produced samples instead of new production.

Table 1 calibration: 7 455 jobs, 25 users, mean runtime 8.81 h, peak
month 11-2003 (with only 28.2 % from the single busiest resource —
ATLAS spread widely, hence the default matchmaker jitter).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.units import GB, HOUR, MB
from ..workflow.chimera import Derivation, Transformation, VirtualDataCatalog
from ..workflow.dial import Dataset, DatasetCatalog, analysis_dag
from ..workflow.pegasus import PegasusPlanner
from .base import ApplicationDemonstrator, AppContext

#: Stage runtimes chosen so the 3-job chain averages Table 1's 8.81 h.
PYTHIA_RUNTIME = 1.0 * HOUR
ATLSIM_RUNTIME = 16.0 * HOUR
RECO_RUNTIME = 9.4 * HOUR

#: §4.1: simulation "creates datasets with an average size of about 2 GB".
SIM_OUTPUT_BYTES = 2 * GB
GEN_OUTPUT_BYTES = 150 * MB
RECO_OUTPUT_BYTES = 500 * MB

#: §6.1 failure accounting: ~30 % total failures, ~90 % site-caused —
#: so ~3 % of failures are the application's own.
APP_FAILURE_PROBABILITY = 0.03


class ATLASApplication(ApplicationDemonstrator):
    """The GCE-Server production system plus DIAL analysis."""

    name = "usatlas-gce"
    vo = "usatlas"
    #: 7455 jobs / 3 jobs per chain ~ 2485 units; peak 11-2003.
    total_units = 2485
    monthly_profile = {
        "10-2003": 0.10, "11-2003": 0.35, "12-2003": 0.15, "01-2004": 0.12,
        "02-2004": 0.10, "03-2004": 0.10, "04-2004": 0.08,
    }
    users = tuple(f"atlas-user{i:02d}" for i in range(25))

    #: Every ~20th unit is a DIAL analysis over produced samples (§6.1:
    #: samples "continue to be analyzed by DIAL developers").
    DIAL_EVERY = 20

    def __init__(self, ctx: AppContext, archive_site: str = "BNL_ATLAS") -> None:
        super().__init__(ctx)
        self.archive_site = archive_site
        self.vdc = VirtualDataCatalog()
        self.vdc.add_transformation(
            Transformation("pythia", runtime=PYTHIA_RUNTIME, staging="minimal")
        )
        self.vdc.add_transformation(
            Transformation("atlsim", runtime=ATLSIM_RUNTIME, staging="heavy")
        )
        self.vdc.add_transformation(
            Transformation("atlreco", runtime=RECO_RUNTIME, staging="heavy")
        )
        self.planner = PegasusPlanner(ctx.rls, ctx.rng, selector=ctx.replica_selector)
        self.dataset_catalog = DatasetCatalog()
        #: §6.1: GCE-Server deployed on 22 Grid3 sites via Pacman.
        self.deployed_sites: List[str] = []

    def deploy(self, site_names: List[str]) -> None:
        """User-level GCE-Server installation (marks sites deployed)."""
        for name in site_names:
            site = self.ctx.sites.get(name)
            if site is not None:
                site.installed_packages.add("gce-server")
                self.deployed_sites.append(name)

    def _production_dax(self, index: int):
        rid = f"atl{index:05d}"
        self.vdc.add_derivation(
            Derivation(f"gen-{rid}", "pythia",
                       outputs=((f"/atlas/{rid}/gen", GEN_OUTPUT_BYTES),))
        )
        self.vdc.add_derivation(
            Derivation(f"sim-{rid}", "atlsim",
                       inputs=(f"/atlas/{rid}/gen",),
                       outputs=((f"/atlas/{rid}/sim", SIM_OUTPUT_BYTES),))
        )
        self.vdc.add_derivation(
            Derivation(f"reco-{rid}", "atlreco",
                       inputs=(f"/atlas/{rid}/sim",),
                       outputs=((f"/atlas/{rid}/dst", RECO_OUTPUT_BYTES),))
        )
        return self.vdc.derive([f"/atlas/{rid}/dst"])

    def run_unit(self, index: int):
        user = self.users[index % len(self.users)]
        if index % self.DIAL_EVERY == self.DIAL_EVERY - 1 and len(self.dataset_catalog) >= 2:
            # DIAL analysis over recently produced samples.
            dag = analysis_dag(
                self.dataset_catalog, self.ctx.rng, user=user,
                name=f"dial-{index:05d}", max_datasets=4,
            )
            jobs = yield from self.run_dag(dag)
            return jobs
        dax = self._production_dax(index)
        dag = self.planner.plan(
            dax, vo=self.vo, user=user, archive_site=self.archive_site,
            name=f"atlas-{index:05d}",
            app_failure_probability=APP_FAILURE_PROBABILITY,
        )
        jobs = yield from self.run_dag(dag)
        # Successful reconstructions enter the DIAL dataset catalog.
        rid = f"atl{index:05d}"
        if any(j.succeeded and j.spec.name == f"reco-{rid}" for j in jobs):
            self.dataset_catalog.register(
                Dataset(
                    name=rid,
                    lfn=f"/atlas/{rid}/dst",
                    size=RECO_OUTPUT_BYTES,
                    site=self.archive_site,
                    events=5000,
                )
            )
        return jobs
