"""The GridFTP data-transfer demonstrator (§4.7, §6.3).

"A data transfer study was performed to evaluate whether we could
perform large-scale reliable data transfers between Grid3 sites.  A
Java-based plug-in environment (Entrada) was used to generate simulated
traffic between a matrix of sites in a periodic fashion."

§6.3: "We met our goal of transferring 2 TB across Grid3 per day, and
long-running data transfers ran reliably."  Fig. 5: "The GridFTP
demonstrator accounted for most data transferred on Grid3" (~100 TB in
the 30-day window around SC2003).

The demonstrator cycles through the site matrix, moving a configurable
daily volume; completed transfers are logged to the ledger under the
iVDGL VO (the CS demonstrators' VO) with kind "demo".
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import GridError
from ..middleware import gridftp
from ..sim.units import DAY, GB, HOUR, TB
from .base import ApplicationDemonstrator, AppContext

#: §6.3 target, exceeded in practice: most of Fig. 5's ~100 TB/30 d.
DEFAULT_DAILY_VOLUME = 2.5 * TB


class GridFTPDemoApplication(ApplicationDemonstrator):
    """Entrada-style periodic site-matrix transfer traffic."""

    name = "gridftp-demo"
    vo = "ivdgl"
    users = ("entrada",)
    total_units = 0  # interval-driven

    def __init__(
        self,
        ctx: AppContext,
        daily_volume: float = DEFAULT_DAILY_VOLUME,
        cycle_interval: float = 1 * HOUR,
        transfer_size: float = 13 * GB,
    ) -> None:
        super().__init__(ctx)
        self.daily_volume = daily_volume
        self.cycle_interval = cycle_interval
        self.transfer_size = transfer_size
        self.bytes_attempted = 0.0
        self.bytes_delivered = 0.0
        self.transfers_ok = 0
        self.transfers_failed = 0
        self._matrix_cursor = 0

    def _site_pairs(self, count: int) -> List[tuple]:
        """The next ``count`` (src, dst) pairs of the site matrix."""
        names = sorted(
            name for name, site in self.ctx.sites.items() if site.online
        )
        if len(names) < 2:
            return []
        pairs = []
        for _ in range(count):
            i = self._matrix_cursor % len(names)
            j = (self._matrix_cursor + 1 + (self._matrix_cursor // len(names))) % len(names)
            if i == j:
                j = (j + 1) % len(names)
            pairs.append((names[i], names[j]))
            self._matrix_cursor += 1
        return pairs

    def _one_transfer(self, src_name: str, dst_name: str, size: float, tag: int):
        src = self.ctx.sites[src_name]
        dst = self.ctx.sites[dst_name]
        self.bytes_attempted += size
        lfn = f"/entrada/{tag:08d}"
        try:
            yield from gridftp.transfer(
                self.ctx.engine, src, dst, lfn, size,
                # Demo traffic streams through; it does not occupy SEs.
                write_to_storage=False,
            )
        except GridError:
            self.transfers_failed += 1
            return
        self.transfers_ok += 1
        self.bytes_delivered += size
        if self.ctx.ledger is not None:
            self.ctx.ledger.record(
                self.ctx.engine.now, self.vo, size, src_name, dst_name,
                kind="demo",
            )

    def _campaign(self):
        engine = self.ctx.engine
        # Volume per cycle, scaled like everything else.
        per_cycle = self.daily_volume * (self.cycle_interval / DAY) / self.ctx.scale
        tag = 0
        while engine.now < self.ctx.duration:
            n_transfers = max(1, int(round(per_cycle / self.transfer_size)))
            size = per_cycle / n_transfers
            for src_name, dst_name in self._site_pairs(n_transfers):
                tag += 1
                self.stats.units_submitted += 1
                engine.process(
                    self._one_transfer(src_name, dst_name, size, tag),
                    name=f"entrada-{tag}",
                )
            yield engine.timeout(self.cycle_interval)

    def run_unit(self, index: int):  # pragma: no cover - interval-driven
        raise NotImplementedError("the demo overrides _campaign")

    @property
    def reliability(self) -> float:
        """Fraction of attempted transfers that completed (§6.3:
        'long-running data transfers ran reliably')."""
        total = self.transfers_ok + self.transfers_failed
        return self.transfers_ok / total if total else 0.0
