"""Flow-level wide-area network model.

The paper's §6.4 lists *gatekeeper network bandwidth capacity* as a
primary site-selection criterion, and §6.3 reports a sustained 2 TB/day
(peaking near 4 TB/day) across Grid3.  To reproduce those numbers the
transfer substrate must model *contention*: many concurrent GridFTP flows
sharing site access links.

We use the classic flow-level abstraction: a transfer is a fluid flow
over a route (a list of links); at any instant the set of active flows
receives a **max-min fair** bandwidth allocation (iterative
water-filling), which is the standard first-order model of TCP sharing.
Rates are recomputed whenever a flow starts or ends or a link's capacity
changes (e.g. a simulated network interruption).  Between recomputations
each flow progresses linearly, so the event count per transfer is
O(active flows) instead of per-packet.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import NetworkInterruptionError
from ..sim.engine import Engine, Event


class Link:
    """A unidirectional capacity-constrained network link."""

    __slots__ = ("name", "nominal_bandwidth", "bandwidth", "flows")

    def __init__(self, name: str, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError(f"link {name!r} bandwidth must be positive")
        self.name = name
        #: Configured capacity (bytes/s); restored after interruptions.
        self.nominal_bandwidth = float(bandwidth)
        #: Current capacity; 0 while interrupted.
        self.bandwidth = float(bandwidth)
        #: Active flows traversing this link.
        self.flows: set = set()

    @property
    def up(self) -> bool:
        """Whether the link currently carries traffic."""
        return self.bandwidth > 0

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.bandwidth/1e6:.0f} MB/s {len(self.flows)} flows>"


class Flow:
    """One in-progress bulk transfer over a fixed route."""

    __slots__ = (
        "network", "route", "size", "remaining", "rate", "started_at",
        "last_update", "done", "label",
    )

    def __init__(self, network: "Network", route: List[Link], size: float, label: str) -> None:
        self.network = network
        self.route = route
        self.size = float(size)
        self.remaining = float(size)
        self.rate = 0.0
        self.started_at = network.engine.now
        self.last_update = network.engine.now
        #: Completion event: value is the flow, failure is a
        #: NetworkInterruptionError if the flow was killed.
        self.done: Event = network.engine.event()
        self.label = label

    @property
    def transferred(self) -> float:
        """Bytes moved so far (exact at recompute instants)."""
        return self.size - self.remaining

    def eta(self) -> float:
        """Seconds until completion at the current rate (inf if stalled)."""
        if self.rate <= 0:
            return float("inf")
        return self.remaining / self.rate

    def __repr__(self) -> str:
        return f"<Flow {self.label} {self.remaining:.0f}/{self.size:.0f}B @{self.rate:.0f}B/s>"


class Network:
    """The Grid3 WAN: named links, max-min fair flow scheduling.

    The topology is supplied by the fabric builder: each site gets an
    uplink and a downlink (its access pipes); the WAN core is assumed
    uncongested, which matches the paper's observation that deployment
    problems were at site edges ("account privileges, ports, and
    firewalls", §6.3), not the backbone.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.links: Dict[str, Link] = {}
        self._flows: set = set()
        self._wakeup_version = 0
        #: Set by :func:`repro.fabric.topology.wire_backbone`; when True,
        #: Site.route_to inserts regional trunk links.
        self.backbone_enabled = False
        #: Cumulative bytes delivered, for Fig. 5-style accounting.
        self.total_bytes_delivered = 0.0
        #: Observers called as fn(flow) on each flow completion.
        self.on_flow_complete: List = []

    # -- topology -----------------------------------------------------------
    def add_link(self, name: str, bandwidth: float) -> Link:
        """Create and register a link.  Names must be unique."""
        if name in self.links:
            raise ValueError(f"duplicate link {name!r}")
        link = Link(name, bandwidth)
        self.links[name] = link
        return link

    def link(self, name: str) -> Link:
        """Look up a link by name."""
        return self.links[name]

    # -- link failures --------------------------------------------------------
    def set_link_bandwidth(self, name: str, bandwidth: float) -> None:
        """Change a link's current capacity (0 = interrupted)."""
        link = self.links[name]
        link.bandwidth = max(0.0, float(bandwidth))
        self._recompute()

    def interrupt_link(self, name: str, kill_flows: bool = False) -> None:
        """Take a link down.  With ``kill_flows`` the flows on it fail
        immediately (TCP reset); otherwise they stall until restore."""
        link = self.links[name]
        link.bandwidth = 0.0
        if kill_flows:
            for flow in list(link.flows):
                self.kill_flow(flow, reason=f"link {name} interrupted")
        self._recompute()

    def restore_link(self, name: str) -> None:
        """Bring a link back at its nominal capacity."""
        link = self.links[name]
        link.bandwidth = link.nominal_bandwidth
        self._recompute()

    # -- transfers ---------------------------------------------------------------
    def start_transfer(
        self, route_names: Sequence[str], size: float, label: str = ""
    ) -> Flow:
        """Begin a bulk transfer of ``size`` bytes along ``route_names``.

        Returns the :class:`Flow`; yield ``flow.done`` to wait for it.
        Zero-byte transfers complete immediately.
        """
        if size < 0:
            raise ValueError("transfer size cannot be negative")
        route = [self.links[name] for name in route_names]
        flow = Flow(self, route, size, label)
        if size == 0:
            flow.done.succeed(flow)
            return flow
        self._flows.add(flow)
        for link in route:
            link.flows.add(flow)
        self._recompute()
        return flow

    def kill_flow(self, flow: Flow, reason: str = "interrupted") -> None:
        """Abort a flow; its ``done`` event fails."""
        if flow not in self._flows:
            return
        self._detach(flow)
        flow.done.fail(NetworkInterruptionError(reason))
        self._recompute()

    @property
    def active_flows(self) -> List[Flow]:
        """Snapshot of in-flight flows."""
        return list(self._flows)

    def current_rate(self, flow: Flow) -> float:
        """The flow's max-min fair rate as of the last recompute."""
        return flow.rate

    # -- internals -------------------------------------------------------------
    def _detach(self, flow: Flow) -> None:
        self._flows.discard(flow)
        for link in flow.route:
            link.flows.discard(flow)

    def _advance_progress(self) -> None:
        """Move every flow forward at its current rate since last update."""
        now = self.engine.now
        for flow in self._flows:
            dt = now - flow.last_update
            if dt > 0 and flow.rate > 0:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            flow.last_update = now

    def _maxmin_rates(self) -> None:
        """Water-filling max-min fair allocation over active flows."""
        unassigned = {f for f in self._flows}
        capacity = {link: link.bandwidth for link in self.links.values()}
        # Flows crossing a down link get rate 0 outright.
        for flow in list(unassigned):
            if any(not link.up for link in flow.route):
                flow.rate = 0.0
                unassigned.discard(flow)
        while unassigned:
            # Bottleneck link: smallest per-flow fair share.
            best_share = None
            best_link = None
            for link in self.links.values():
                n = sum(1 for f in link.flows if f in unassigned)
                if n == 0:
                    continue
                share = capacity[link] / n
                if best_share is None or share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            for flow in list(best_link.flows):
                if flow not in unassigned:
                    continue
                flow.rate = best_share
                unassigned.discard(flow)
                for link in flow.route:
                    capacity[link] = max(0.0, capacity[link] - best_share)

    def _recompute(self) -> None:
        """Advance progress, complete finished flows, reallocate, re-arm."""
        self._advance_progress()
        # Complete anything that ran dry exactly now.  The threshold is
        # sub-byte but generous (1e-3 B): at large sim times the float
        # ulp on the clock times a multi-MB/s rate leaves microbyte
        # residues that must count as done, or the wakeup loop livelocks.
        finished = [f for f in self._flows if f.remaining <= 1e-3]
        for flow in finished:
            self._detach(flow)
            self.total_bytes_delivered += flow.size
            flow.done.succeed(flow)
            for observer in self.on_flow_complete:
                observer(flow)
        self._maxmin_rates()
        self._arm_wakeup()

    def _arm_wakeup(self) -> None:
        """Schedule the next completion instant (earliest flow ETA)."""
        self._wakeup_version += 1
        version = self._wakeup_version
        eta = min((f.eta() for f in self._flows), default=float("inf"))
        if eta == float("inf"):
            return
        # Overshoot slightly so clock-ulp rounding cannot leave the
        # finishing flow marginally incomplete and re-arm a zero-delay
        # wakeup forever.
        eta = eta * (1 + 1e-9) + 1e-6

        def _wake(_event: Event, version=version) -> None:
            if version == self._wakeup_version:
                self._recompute()

        timeout = self.engine.timeout(eta)
        timeout.callbacks.append(_wake)
