"""Storage elements: the disks behind every Grid3 site.

A :class:`StorageElement` is a capacity-bounded file store.  Disk-full is
*the* canonical Grid3 failure ("a disk would fill up ... and all jobs
submitted to a site would die", §6.2), so writes fail loudly with
:class:`~repro.errors.StorageFullError` unless space was reserved ahead
of time through the SRM layer (``repro.middleware.srm``), which the paper
names as the missing service that "would have prevented various
storage-related service failures".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReservationError, StorageFullError
from ..sim.engine import Engine


@dataclass(frozen=True)
class FileObject:
    """An immutable (logical name, size) pair stored on some SE."""

    lfn: str
    size: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"file {self.lfn!r} has negative size")


@dataclass
class Reservation:
    """An SRM-style space reservation against a storage element."""

    se: "StorageElement"
    amount: float
    used: float = 0.0
    released: bool = False

    @property
    def available(self) -> float:
        """Reserved space not yet consumed."""
        return self.amount - self.used


class StorageElement:
    """A site's disk array, tracked at file granularity.

    ``capacity`` and all sizes are bytes.  ``used`` + ``reserved_free``
    + free space always equals capacity (the class invariant the
    property tests pin down).
    """

    def __init__(self, engine: Engine, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"SE {name!r} capacity must be positive")
        self.engine = engine
        self.name = name
        self.capacity = float(capacity)
        self._files: Dict[str, FileObject] = {}
        self._used = 0.0
        self._reserved = 0.0  # reserved-but-unused space
        self._reservations: List[Reservation] = []
        #: Lifetime counters for the analysis layer.
        self.bytes_written = 0.0
        self.bytes_deleted = 0.0
        self.write_failures = 0

    # -- accounting ---------------------------------------------------------
    @property
    def used(self) -> float:
        """Bytes occupied by stored files."""
        return self._used

    @property
    def reserved(self) -> float:
        """Bytes reserved via SRM but not yet written."""
        return self._reserved

    @property
    def free(self) -> float:
        """Bytes available to unreserved writes."""
        return self.capacity - self._used - self._reserved

    @property
    def utilisation(self) -> float:
        """Fraction of capacity occupied by files."""
        return self._used / self.capacity

    def __contains__(self, lfn: str) -> bool:
        return lfn in self._files

    def __len__(self) -> int:
        return len(self._files)

    def files(self) -> List[FileObject]:
        """Snapshot of stored files."""
        return list(self._files.values())

    def lookup(self, lfn: str) -> Optional[FileObject]:
        """The stored file object, or None."""
        return self._files.get(lfn)

    # -- writes ------------------------------------------------------------
    def store(self, lfn: str, size: float, reservation: Optional[Reservation] = None) -> FileObject:
        """Write a file.  Raises :class:`StorageFullError` when the disk
        cannot take it; draws on ``reservation`` when provided.

        Overwriting an existing LFN replaces it (sizes adjust).
        """
        if size < 0:
            raise ValueError("file size cannot be negative")
        existing = self._files.get(lfn)
        freed = existing.size if existing else 0.0
        if reservation is not None:
            self._store_reserved(lfn, size, freed, reservation)
        else:
            if size - freed > self.free + 1e-9:
                self.write_failures += 1
                raise StorageFullError(
                    f"SE {self.name}: {size:.3e} B does not fit "
                    f"(free {self.free:.3e} B)"
                )
            self._used += size - freed
        obj = FileObject(lfn, size)
        self._files[lfn] = obj
        self.bytes_written += size
        return obj

    def _store_reserved(self, lfn: str, size: float, freed: float, reservation: Reservation) -> None:
        if reservation.se is not self:
            raise ValueError("reservation belongs to a different SE")
        if reservation.released:
            raise StorageFullError(f"SE {self.name}: reservation already released")
        if size > reservation.available + 1e-9:
            self.write_failures += 1
            raise StorageFullError(
                f"SE {self.name}: write of {size:.3e} B exceeds remaining "
                f"reservation {reservation.available:.3e} B"
            )
        reservation.used += size
        self._reserved -= size
        self._used += size - freed

    def delete(self, lfn: str) -> None:
        """Remove a file; unknown LFNs raise ``KeyError``."""
        obj = self._files.pop(lfn)
        self._used -= obj.size
        self.bytes_deleted += obj.size

    def purge(self, fraction: float = 1.0) -> float:
        """Delete the oldest ``fraction`` of bytes (operator cleanup).
        Returns bytes freed."""
        target = self._used * fraction
        freed = 0.0
        for lfn in list(self._files):
            if freed >= target:
                break
            obj = self._files[lfn]
            self.delete(lfn)
            freed += obj.size
        return freed

    # -- SRM hooks ----------------------------------------------------------
    def reserve(self, amount: float) -> Reservation:
        """Set space aside.  Raises :class:`StorageFullError` if the disk
        cannot honour it (the SRM layer converts that to a scheduling
        decision instead of a mid-job crash)."""
        if amount < 0:
            raise ValueError("reservation cannot be negative")
        if amount > self.free + 1e-9:
            raise StorageFullError(
                f"SE {self.name}: cannot reserve {amount:.3e} B (free {self.free:.3e} B)"
            )
        self._reserved += amount
        res = Reservation(self, amount)
        self._reservations.append(res)
        return res

    def release_reservation(self, reservation: Reservation) -> None:
        """Return a reservation's *unused* space to the free pool.

        A partially-used reservation credits back only ``available``
        (the written bytes already moved into ``used``).  Releasing the
        same reservation twice, or against the wrong SE, raises
        :class:`~repro.errors.ReservationError` — a silent no-op here
        would hide double-release bugs in callers, and a silent credit
        would corrupt the capacity invariant.
        """
        if reservation.se is not self:
            raise ReservationError(
                f"SE {self.name}: reservation belongs to {reservation.se.name}"
            )
        if reservation.released:
            raise ReservationError(
                f"SE {self.name}: reservation already released"
            )
        reservation.released = True
        self._reserved -= reservation.available
        self._reservations = [r for r in self._reservations if r is not reservation]

    def __repr__(self) -> str:
        return (
            f"<SE {self.name} {self._used/1e12:.2f}/{self.capacity/1e12:.2f} TB "
            f"({len(self._files)} files)>"
        )
