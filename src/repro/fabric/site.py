"""A Grid3 site: cluster + storage + access links + configuration.

§5 of the paper: "each resource (compute, storage, application, site,
user) was logically associated with a VO.  At each site, a core set of
grid middleware services with VO-specific configuration and additions
were installed."  :class:`Site` is the passive container those services
attach to; the builder in :mod:`repro.grid3` wires gatekeepers, GridFTP
servers, information providers and monitors onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..sim.engine import Engine
from ..sim.units import GB, HOUR, MBPS, TB
from .cluster import Cluster
from .network import Network
from .storage import StorageElement


@dataclass
class SiteConfig:
    """GLUE-schema-style site attributes (§5.1).

    The paper notes Grid3 added "information providers ... for site
    configuration parameters such as application installation areas,
    temporary working directories, storage element locations, and VDT
    software installation locations" — these are exactly the fields the
    MDS information service publishes for this site.
    """

    app_dir: str = "/grid3/app"
    tmp_dir: str = "/grid3/tmp"
    data_dir: str = "/grid3/data"
    vdt_location: str = "/grid3/vdt"
    #: §6.4 criterion 3: batch-enforced maximum job walltime (seconds).
    max_walltime: float = 72 * HOUR
    #: §6.4 criterion 1: can worker nodes reach the public internet?
    outbound_connectivity: bool = True
    #: Local batch flavour: "condor" | "pbs" | "lsf" (§5).
    batch_system: str = "condor"


class Site:
    """One Grid3 execution/storage site."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        institution: str,
        owner_vo: str,
        nodes: int,
        cpus_per_node: int,
        disk_capacity: float,
        network: Network,
        access_bandwidth: float = 100 * MBPS,
        config: Optional[SiteConfig] = None,
        shared: bool = True,
        tier1: bool = False,
        cpu_speed: float = 1.0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.institution = institution
        #: The VO that owns/operates the site (resources are shared
        #: across all six VOs regardless — that is the point of Grid3).
        self.owner_vo = owner_vo
        #: >60 % of Grid3 CPUs came from shared, non-dedicated facilities
        #: (§7); shared sites run local (non-grid) load too.
        self.shared = shared
        #: BNL (ATLAS) and FNAL (CMS) are archival Tier1 centres.
        self.tier1 = tier1
        #: Relative CPU speed vs the 2 GHz reference machine (§4.5);
        #: compute wall-clock scales inversely.
        self.cpu_speed = cpu_speed
        self.config = config or SiteConfig()

        self.cluster = Cluster(engine, name, nodes, cpus_per_node)
        self.storage = StorageElement(engine, f"{name}-se", disk_capacity)
        self.network = network
        #: Access pipes; GridFTP routes traverse these.
        self.uplink = network.add_link(f"{name}-up", access_bandwidth)
        self.downlink = network.add_link(f"{name}-down", access_bandwidth)

        #: VO -> unix group account name (§5.3: "group accounts at sites,
        #: with a naming convention for each VO").
        self.accounts: Dict[str, str] = {}
        #: Pacman-installed package names (middleware + applications).
        self.installed_packages: Set[str] = set()
        #: Attached services, keyed by role ("gatekeeper", "gridftp",
        #: "gris", "ganglia", ...); populated by the grid builder.
        self.services: Dict[str, object] = {}
        #: Operational status: "online" | "offline" | "degraded".
        self.status = "online"
        #: Published usage policy (§5): which VOs may run here and at
        #: what share.  Set by the grid builder from the policy set;
        #: publication alone is passive — enforcement happens in the
        #: scheduling layer only when ``Grid3Config.fair_share`` is on.
        self.usage_policy = None

    # -- convenience -----------------------------------------------------
    @property
    def cpus(self) -> int:
        """Total CPU count at the site."""
        return self.cluster.total_cpus

    @property
    def online(self) -> bool:
        return self.status == "online"

    @property
    def access_bandwidth(self) -> float:
        """Nominal access-link bandwidth — §6.4 selection criterion 4."""
        return self.uplink.nominal_bandwidth

    def add_account(self, vo: str) -> str:
        """Create the VO's group account (idempotent)."""
        account = self.accounts.get(vo)
        if account is None:
            account = f"grid-{vo.lower()}"
            self.accounts[vo] = account
        return account

    def service(self, role: str):
        """Look up an attached service; KeyError if absent."""
        return self.services[role]

    def attach_service(self, role: str, service: object) -> None:
        """Register a service under ``role`` (gatekeeper, gridftp, ...)."""
        self.services[role] = service

    def route_to(self, other: "Site") -> List[str]:
        """Link names a transfer from this site to ``other`` traverses.

        With a wired backbone (:func:`repro.fabric.topology.wire_backbone`)
        inter-region routes additionally cross the regional trunk.
        """
        middle: List[str] = []
        if getattr(self.network, "backbone_enabled", False):
            from .topology import backbone_route
            middle = backbone_route(
                getattr(self, "region", None),
                getattr(other, "region", None),
                self.network,
            )
        return [self.uplink.name, *middle, other.downlink.name]

    def __repr__(self) -> str:
        return f"<Site {self.name} ({self.owner_vo}) {self.cpus} cpus {self.status}>"
