"""Synthetic fabric generator: break the 27-site ceiling.

The paper's catalog stops at 27 sites and 2800 CPUs, but its *principles*
(§8: "the infrastructure must scale") are about what happens past that
point.  This module grows a catalog of arbitrary size whose aggregate
shape matches the reconstructed Grid3 fabric:

* **power-law site sizes** — real grid facilities are Zipf-like: a few
  Tier1-class farms and a long tail of department clusters.  Sizes are
  Pareto draws normalised to an exact CPU total by largest-remainder
  rounding, so ``sum(s.cpus) == total_cpus`` always holds;
* **anchor sites** — the five VO home/archive sites the application
  layer hardcodes (``VO_HOME_SITE``) are emitted first with their
  canonical names and attributes, sized from the largest draws, so
  every paper workload runs unchanged on a synthetic fabric;
* **generated VO mixes** — owner VOs follow the paper's Table 1 site
  shares; a slice of shared sites carries VO allow-lists the way
  KNU_Grid3 and UWM_LIGO did;
* **tiered WAN** — each site lands in one of ``regions`` synthetic
  regions with Zipf-ish popularity; access bandwidth follows a size
  rank (the biggest farms sit on the fattest pipes), and
  :func:`repro.fabric.topology.wire_backbone` wires the regions through
  a core hub rather than a full mesh;
* **auto usage policies** — :func:`synthetic_policies` extends the
  spec-driven paper rules to generated sites.

Everything is a pure function of ``(sites, total_cpus, seed, ...)``:
same arguments, byte-identical catalog.  The generator uses its own
:class:`random.Random` and never touches the simulation RNG registry,
so *building* a synthetic catalog perturbs no run.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .catalog import GRID3_SITES, GRID3_VOS, VO_HOME_SITE, SiteSpec, spec_by_name
from .topology import SITE_REGION

#: The VO home/archive sites (§4.1-§4.4) that applications address by
#: name.  A synthetic catalog always contains these, canonically named.
ANCHOR_SITES: Tuple[str, ...] = tuple(dict.fromkeys(VO_HOME_SITE.values()))

#: Owner-VO weights approximating the paper's Table 1 site-usage mix.
VO_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("usatlas", 0.34),
    ("uscms", 0.27),
    ("ivdgl", 0.15),
    ("sdss", 0.09),
    ("ligo", 0.08),
    ("btev", 0.07),
)

#: Batch-system mix (§5: OpenPBS / Condor / LSF all present).
BATCH_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("pbs", 0.50),
    ("condor", 0.40),
    ("lsf", 0.10),
)

#: Published walltime limits (hours) seen across the 27-site roster.
WALLTIME_CHOICES: Tuple[float, ...] = (24.0, 36.0, 48.0, 72.0, 96.0, 120.0)

#: Access-link tiers (Mbit/s) by size rank: the biggest farms sit on the
#: fattest pipes (OC-12/GigE class), the tail on T3/OC-3 class.
BANDWIDTH_TIERS: Tuple[Tuple[float, float], ...] = (
    (0.05, 1000.0),   # top 5 %: GigE-class
    (0.30, 622.0),    # next 25 %: OC-12
    (0.75, 155.0),    # middle: OC-3
    (1.00, 45.0),     # tail: T3
)

#: Default Pareto shape for site sizes.  ~1.6 gives the heavy tail real
#: grid inventories show (a few 1000-CPU farms, many 10-CPU clusters).
DEFAULT_ALPHA = 1.6

#: Default shared-CPU fraction target (§7: "more than 60 %").
DEFAULT_SHARED_FRACTION = 0.62


def _weighted_choice(rng: random.Random, weights: Sequence[Tuple[str, float]]) -> str:
    """One categorical draw; weights need not sum to 1."""
    total = sum(w for _, w in weights)
    x = rng.random() * total
    for value, w in weights:
        x -= w
        if x <= 0:
            return value
    return weights[-1][0]


def _largest_remainder(weights: Sequence[float], total: int, minimum: int) -> List[int]:
    """Apportion ``total`` units over ``weights`` with every share at
    least ``minimum`` — exact conservation via largest-remainder
    rounding (ties broken by index, so the result is deterministic)."""
    n = len(weights)
    if total < n * minimum:
        raise ValueError(
            f"total_cpus={total} cannot give {n} sites {minimum} CPUs each"
        )
    pool = total - n * minimum
    wsum = sum(weights)
    raw = [w / wsum * pool for w in weights]
    shares = [int(r) for r in raw]
    leftover = pool - sum(shares)
    order = sorted(range(n), key=lambda i: (-(raw[i] - shares[i]), i))
    for i in order[:leftover]:
        shares[i] += 1
    return [minimum + s for s in shares]


def synthesize(
    sites: int = 500,
    total_cpus: Optional[int] = None,
    seed: int = 0,
    alpha: float = DEFAULT_ALPHA,
    shared_fraction_target: float = DEFAULT_SHARED_FRACTION,
    regions: int = 8,
    min_cpus: int = 4,
    vos: Optional[Sequence[str]] = None,
) -> List[SiteSpec]:
    """Generate a ``sites``-site catalog shaped like Grid3.

    ``total_cpus`` defaults to ``sites * 104`` (the 27-site catalog's
    ~104 CPUs/site mean).  The anchor sites come first with canonical
    names; generated sites are named ``SYN0000``...  Same arguments,
    byte-identical result.
    """
    if sites < len(ANCHOR_SITES):
        raise ValueError(
            f"need at least {len(ANCHOR_SITES)} sites for the VO anchors"
        )
    if total_cpus is None:
        total_cpus = sites * 104
    vos = list(vos) if vos is not None else list(GRID3_VOS)
    rng = random.Random(seed)

    # -- sizes: Pareto draws, largest first to the anchors ----------------
    draws = sorted((rng.paretovariate(alpha) for _ in range(sites)), reverse=True)
    cpus = _largest_remainder(draws, total_cpus, min_cpus)

    # -- region popularity: Zipf-ish, drawn once ---------------------------
    region_names = [f"net{k:02d}" for k in range(max(1, regions))]
    region_weights = [(r, rng.paretovariate(1.5)) for r in region_names]

    specs: List[SiteSpec] = []
    shared_cpus = 0

    # -- anchors: canonical attributes, synthetic sizes --------------------
    for i, name in enumerate(ANCHOR_SITES):
        base = spec_by_name(name, GRID3_SITES)
        size = cpus[i]
        specs.append(
            SiteSpec(
                base.name, base.institution, base.owner_vo, size,
                base.batch_system, base.shared, base.typical_availability,
                round(size * base.disk_tb / base.cpus, 1), base.bandwidth_mbit,
                base.max_walltime_hours, base.outbound_connectivity,
                base.tier1, base.cpu_speed,
                region=SITE_REGION.get(base.name),
            )
        )
        if base.shared:
            shared_cpus += size

    # -- generated sites ---------------------------------------------------
    for i in range(len(ANCHOR_SITES), sites):
        size = cpus[i]
        rank = i / sites
        bandwidth = next(bw for cut, bw in BANDWIDTH_TIERS if rank <= cut)
        owner = _weighted_choice(rng, [w for w in VO_WEIGHTS if w[0] in vos] or
                                 [(v, 1.0) for v in vos])
        # Mark sites shared (in generation order — deterministic) until
        # the shared-CPU fraction clears the target; the long tail keeps
        # filling it past the threshold the way the real roster did.
        remaining_target = shared_fraction_target * total_cpus
        shared = shared_cpus < remaining_target or rng.random() < 0.4
        availability = round(rng.uniform(0.55, 0.75), 2) if shared else 1.0
        if shared:
            shared_cpus += size
        specs.append(
            SiteSpec(
                f"SYN{i:04d}",
                f"Synthetic Facility {i}",
                owner,
                size,
                _weighted_choice(rng, BATCH_WEIGHTS),
                shared,
                availability,
                round(max(0.2, size * rng.uniform(0.02, 0.05)), 1),
                bandwidth,
                rng.choice(WALLTIME_CHOICES),
                rng.random() < 0.85,
                False,
                round(rng.uniform(0.8, 1.3), 2),
                region=_weighted_choice(rng, region_weights),
            )
        )
    return specs


def site_regions(specs: Sequence[SiteSpec]) -> Dict[str, str]:
    """The name->region map :func:`wire_backbone` consumes, from the
    per-spec region tags (sites without one stay edge-only)."""
    return {s.name: s.region for s in specs if s.region}


def synthetic_policies(
    specs: Sequence[SiteSpec],
    vos: Optional[Sequence[str]] = None,
    seed: int = 0,
    restricted_fraction: float = 0.15,
):
    """Auto-generated :class:`~repro.scheduling.policy.UsagePolicy` set.

    Starts from the spec-driven paper rules
    (:func:`~repro.scheduling.policy.policy_for_spec`) and gives a
    deterministic ``restricted_fraction`` slice of generated shared
    sites a VO allow-list (owner plus 2-3 guests), the way KNU_Grid3
    and UWM_LIGO restricted access in the real roster.
    """
    from dataclasses import replace

    from ..scheduling.policy import policy_for_spec

    vos = list(vos) if vos is not None else list(GRID3_VOS)
    rng = random.Random(seed)
    policies = {}
    for spec in specs:
        policy = policy_for_spec(spec, vos)
        synthetic = spec.name.startswith("SYN")
        if synthetic and spec.shared and rng.random() < restricted_fraction:
            guests = [v for v in vos if v != spec.owner_vo]
            picked = rng.sample(guests, min(len(guests), rng.randint(2, 3)))
            allowed = tuple(sorted({spec.owner_vo, *picked}))
            policy = replace(policy, allowed_vos=allowed)
        policies[spec.name] = policy
    return policies


def summarize(specs: Sequence[SiteSpec]) -> Dict[str, object]:
    """Aggregate statistics for a catalog (the ``repro fabric`` CLI)."""
    total = sum(s.cpus for s in specs)
    shared = sum(s.cpus for s in specs if s.shared)
    by_vo: Dict[str, int] = {}
    by_region: Dict[str, int] = {}
    for s in specs:
        by_vo[s.owner_vo] = by_vo.get(s.owner_vo, 0) + 1
        if s.region:
            by_region[s.region] = by_region.get(s.region, 0) + 1
    sizes = sorted((s.cpus for s in specs), reverse=True)
    return {
        "sites": len(specs),
        "total_cpus": total,
        "typical_cpus": round(sum(s.cpus * s.typical_availability for s in specs), 1),
        "shared_fraction": round(shared / total, 4) if total else 0.0,
        "largest_site": sizes[0] if sizes else 0,
        "median_site": sizes[len(sizes) // 2] if sizes else 0,
        "smallest_site": sizes[-1] if sizes else 0,
        "sites_by_vo": dict(sorted(by_vo.items())),
        "sites_by_region": dict(sorted(by_region.items())),
        "regions": len(by_region),
        "tier1": [s.name for s in specs if s.tier1],
    }
