"""Compute clusters: worker nodes and CPU slots.

A Grid3 site's farm is a set of :class:`WorkerNode`\\ s, each with a few
CPUs.  The batch system (``repro.scheduling``) decides *when* a job
starts; the cluster only answers *where* (which node has a free CPU) and
tracks what runs on each node so node-level failures — the "nightly roll
over of worker nodes" that burned ATLAS in §6.1 — can kill exactly the
processes running there.

Capacity queries (``free_cpus`` etc.) are maintained counters and
placement is a bucketed argmax, so per-dispatch cost no longer scales
with farm size: at synthetic-fabric scale (hundreds of sites, thousands
of nodes) the old O(nodes) scans per event dominated entire runs.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from ..sim.engine import Engine, Process

_MISSING = object()


class WorkerNode:
    """One machine: ``cpus`` slots and the jobs currently occupying them."""

    __slots__ = ("node_id", "cpus", "running", "online")

    def __init__(self, node_id: str, cpus: int) -> None:
        if cpus < 1:
            raise ValueError("node must have at least one CPU")
        self.node_id = node_id
        self.cpus = cpus
        #: Map of occupant key -> the Process to interrupt on failure.
        self.running: Dict[object, Optional[Process]] = {}
        self.online = True

    @property
    def free_cpus(self) -> int:
        """Unoccupied CPU slots (0 while offline)."""
        if not self.online:
            return 0
        return self.cpus - len(self.running)

    def __repr__(self) -> str:
        state = "up" if self.online else "down"
        return f"<Node {self.node_id} {len(self.running)}/{self.cpus} {state}>"


class Cluster:
    """A site's farm of worker nodes.

    Placement semantics are pinned: :meth:`allocate` picks the node
    with the *strictly maximal* free-CPU count, lowest list index
    breaking ties — exactly the old linear argmax scan, now served by
    per-free-count index heaps with lazy invalidation (amortized
    O(log nodes) instead of O(nodes) per placement).
    """

    def __init__(self, engine: Engine, name: str, nodes: int, cpus_per_node: int = 2) -> None:
        if nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.engine = engine
        self.name = name
        self.nodes: List[WorkerNode] = [
            WorkerNode(f"{name}-n{i:03d}", cpus_per_node) for i in range(nodes)
        ]
        #: Observers called as fn(node, occupant_key) when a running
        #: occupant is killed by a node event.
        self.on_eviction: List[Callable] = []
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        """Recompute counters and placement heaps from node state."""
        self._total = sum(n.cpus for n in self.nodes)
        self._online_cpus = sum(n.cpus for n in self.nodes if n.online)
        self._busy = sum(len(n.running) for n in self.nodes)
        self._node_index = {id(n): i for i, n in enumerate(self.nodes)}
        # free count -> min-heap of node indices.  Entries go stale when
        # a node's free count moves on (or duplicate when it returns);
        # they are discarded lazily when popped (validity: node still
        # online with exactly that free count).  A max-heap of negated
        # counts tracks which buckets may hold the current maximum; it
        # holds exactly one key per existing bucket.
        self._buckets: Dict[int, List[int]] = {}
        self._bucket_keys: List[int] = []
        for i, node in enumerate(self.nodes):
            free = node.free_cpus
            if free > 0:
                self._push_free(i, free)

    def _push_free(self, index: int, free: int) -> None:
        bucket = self._buckets.get(free)
        if bucket is None:
            self._buckets[free] = [index]
            heapq.heappush(self._bucket_keys, -free)
        else:
            heapq.heappush(bucket, index)

    # -- capacity ----------------------------------------------------------
    @property
    def total_cpus(self) -> int:
        """All CPU slots, online or not."""
        return self._total

    @property
    def online_cpus(self) -> int:
        """CPU slots on online nodes."""
        return self._online_cpus

    @property
    def busy_cpus(self) -> int:
        """Occupied CPU slots."""
        return self._busy

    @property
    def free_cpus(self) -> int:
        """Slots available for new work right now.

        Occupants never survive on an offline node (node failure evicts
        them), so online minus busy is exact.
        """
        return self._online_cpus - self._busy

    @property
    def utilisation(self) -> float:
        """busy / total (not just online) — matches the paper's
        'percentage of resources used' metric definition (§7)."""
        total = self._total
        return self._busy / total if total else 0.0

    # -- placement -----------------------------------------------------------
    def allocate(self, occupant: object, process: Optional[Process] = None) -> Optional[WorkerNode]:
        """Place ``occupant`` on the least-loaded node with a free CPU.

        Returns the node, or None when the cluster is full.  ``process``
        (if given) is interrupted if the node later fails.
        """
        buckets = self._buckets
        keys = self._bucket_keys
        nodes = self.nodes
        while keys:
            free = -keys[0]
            bucket = buckets.get(free)
            while bucket:
                node = nodes[bucket[0]]
                if node.online and node.cpus - len(node.running) == free:
                    index = heapq.heappop(bucket)
                    node.running[occupant] = process
                    self._busy += 1
                    if free > 1:
                        self._push_free(index, free - 1)
                    if not bucket:
                        del buckets[free]
                        heapq.heappop(keys)
                    return node
                heapq.heappop(bucket)
            if free in buckets:
                del buckets[free]
            heapq.heappop(keys)
        return None

    def release(self, node: WorkerNode, occupant: object) -> None:
        """Free the CPU ``occupant`` held on ``node``."""
        if node.running.pop(occupant, _MISSING) is _MISSING:
            return
        self._busy -= 1
        if node.online:
            index = self._node_index.get(id(node))
            if index is not None:
                self._push_free(index, node.cpus - len(node.running))

    # -- node lifecycle ----------------------------------------------------------
    def fail_node(self, node: WorkerNode, cause: object = "node failure") -> List[object]:
        """Take a node down, interrupting everything running on it.

        Returns the evicted occupant keys.  The node stays offline until
        :meth:`restore_node`.
        """
        if node.online:
            self._online_cpus -= node.cpus
            self._busy -= len(node.running)
        node.online = False
        evicted = list(node.running.keys())
        for occupant, process in list(node.running.items()):
            for observer in self.on_eviction:
                observer(node, occupant)
            if process is not None and process.is_alive:
                process.interrupt(cause)
        node.running.clear()
        return evicted

    def restore_node(self, node: WorkerNode) -> None:
        """Bring a node back online."""
        if not node.online:
            self._online_cpus += node.cpus
            node.online = True
            index = self._node_index.get(id(node))
            if index is not None:
                self._push_free(index, node.free_cpus)

    def rollover(self, fraction: float, cause: object = "nightly rollover") -> List[object]:
        """Reboot a fraction of nodes simultaneously (ACDC's nightly
        maintenance, §6.1).  Running jobs on them are killed; nodes come
        back online immediately (the reboot is fast relative to jobs).
        Returns all evicted occupant keys."""
        count = max(1, int(len(self.nodes) * fraction))
        evicted: List[object] = []
        for node in self.nodes[:count]:
            evicted.extend(self.fail_node(node, cause))
            self.restore_node(node)
        return evicted

    def resize(self, new_nodes: int, cpus_per_node: Optional[int] = None) -> None:
        """Grow or shrink the farm (sites 'introduce and withdraw
        resources', §7).  Shrinking removes idle nodes first; busy nodes
        are never killed by a resize."""
        if new_nodes < 0:
            raise ValueError("node count cannot be negative")
        if new_nodes > len(self.nodes):
            per = cpus_per_node or (self.nodes[0].cpus if self.nodes else 2)
            start = len(self.nodes)
            for i in range(start, new_nodes):
                self.nodes.append(WorkerNode(f"{self.name}-n{i:03d}", per))
        else:
            removable = [n for n in self.nodes if not n.running]
            to_remove = len(self.nodes) - new_nodes
            for node in removable[:to_remove]:
                self.nodes.remove(node)
        # Indices shifted (and entries may reference removed nodes):
        # rebuild wholesale.  Resizes are rare operator events.
        self._rebuild_index()

    def __repr__(self) -> str:
        return f"<Cluster {self.name} {self.busy_cpus}/{self.total_cpus} cpus>"
