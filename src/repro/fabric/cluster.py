"""Compute clusters: worker nodes and CPU slots.

A Grid3 site's farm is a set of :class:`WorkerNode`\\ s, each with a few
CPUs.  The batch system (``repro.scheduling``) decides *when* a job
starts; the cluster only answers *where* (which node has a free CPU) and
tracks what runs on each node so node-level failures — the "nightly roll
over of worker nodes" that burned ATLAS in §6.1 — can kill exactly the
processes running there.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.engine import Engine, Process


class WorkerNode:
    """One machine: ``cpus`` slots and the jobs currently occupying them."""

    __slots__ = ("node_id", "cpus", "running", "online")

    def __init__(self, node_id: str, cpus: int) -> None:
        if cpus < 1:
            raise ValueError("node must have at least one CPU")
        self.node_id = node_id
        self.cpus = cpus
        #: Map of occupant key -> the Process to interrupt on failure.
        self.running: Dict[object, Optional[Process]] = {}
        self.online = True

    @property
    def free_cpus(self) -> int:
        """Unoccupied CPU slots (0 while offline)."""
        if not self.online:
            return 0
        return self.cpus - len(self.running)

    def __repr__(self) -> str:
        state = "up" if self.online else "down"
        return f"<Node {self.node_id} {len(self.running)}/{self.cpus} {state}>"


class Cluster:
    """A site's farm of worker nodes."""

    def __init__(self, engine: Engine, name: str, nodes: int, cpus_per_node: int = 2) -> None:
        if nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.engine = engine
        self.name = name
        self.nodes: List[WorkerNode] = [
            WorkerNode(f"{name}-n{i:03d}", cpus_per_node) for i in range(nodes)
        ]
        #: Observers called as fn(node, occupant_key) when a running
        #: occupant is killed by a node event.
        self.on_eviction: List[Callable] = []

    # -- capacity ----------------------------------------------------------
    @property
    def total_cpus(self) -> int:
        """All CPU slots, online or not."""
        return sum(n.cpus for n in self.nodes)

    @property
    def online_cpus(self) -> int:
        """CPU slots on online nodes."""
        return sum(n.cpus for n in self.nodes if n.online)

    @property
    def busy_cpus(self) -> int:
        """Occupied CPU slots."""
        return sum(len(n.running) for n in self.nodes)

    @property
    def free_cpus(self) -> int:
        """Slots available for new work right now."""
        return sum(n.free_cpus for n in self.nodes)

    @property
    def utilisation(self) -> float:
        """busy / total (not just online) — matches the paper's
        'percentage of resources used' metric definition (§7)."""
        total = self.total_cpus
        return self.busy_cpus / total if total else 0.0

    # -- placement -----------------------------------------------------------
    def allocate(self, occupant: object, process: Optional[Process] = None) -> Optional[WorkerNode]:
        """Place ``occupant`` on the least-loaded node with a free CPU.

        Returns the node, or None when the cluster is full.  ``process``
        (if given) is interrupted if the node later fails.
        """
        best: Optional[WorkerNode] = None
        for node in self.nodes:
            if node.free_cpus > 0 and (best is None or node.free_cpus > best.free_cpus):
                best = node
        if best is None:
            return None
        best.running[occupant] = process
        return best

    def release(self, node: WorkerNode, occupant: object) -> None:
        """Free the CPU ``occupant`` held on ``node``."""
        node.running.pop(occupant, None)

    # -- node lifecycle ----------------------------------------------------------
    def fail_node(self, node: WorkerNode, cause: object = "node failure") -> List[object]:
        """Take a node down, interrupting everything running on it.

        Returns the evicted occupant keys.  The node stays offline until
        :meth:`restore_node`.
        """
        node.online = False
        evicted = list(node.running.keys())
        for occupant, process in list(node.running.items()):
            for observer in self.on_eviction:
                observer(node, occupant)
            if process is not None and process.is_alive:
                process.interrupt(cause)
        node.running.clear()
        return evicted

    def restore_node(self, node: WorkerNode) -> None:
        """Bring a node back online."""
        node.online = True

    def rollover(self, fraction: float, cause: object = "nightly rollover") -> List[object]:
        """Reboot a fraction of nodes simultaneously (ACDC's nightly
        maintenance, §6.1).  Running jobs on them are killed; nodes come
        back online immediately (the reboot is fast relative to jobs).
        Returns all evicted occupant keys."""
        count = max(1, int(len(self.nodes) * fraction))
        evicted: List[object] = []
        for node in self.nodes[:count]:
            evicted.extend(self.fail_node(node, cause))
            self.restore_node(node)
        return evicted

    def resize(self, new_nodes: int, cpus_per_node: Optional[int] = None) -> None:
        """Grow or shrink the farm (sites 'introduce and withdraw
        resources', §7).  Shrinking removes idle nodes first; busy nodes
        are never killed by a resize."""
        if new_nodes < 0:
            raise ValueError("node count cannot be negative")
        if new_nodes > len(self.nodes):
            per = cpus_per_node or (self.nodes[0].cpus if self.nodes else 2)
            start = len(self.nodes)
            for i in range(start, new_nodes):
                self.nodes.append(WorkerNode(f"{self.name}-n{i:03d}", per))
        else:
            removable = [n for n in self.nodes if not n.running]
            to_remove = len(self.nodes) - new_nodes
            for node in removable[:to_remove]:
                self.nodes.remove(node)

    def __repr__(self) -> str:
        return f"<Cluster {self.name} {self.busy_cpus}/{self.total_cpus} cpus>"
