"""WAN backbone topology: regional trunks between site clusters.

The flat model (site uplink → site downlink) captures edge contention,
which §6.3 says dominated in practice.  This module adds the next level
of fidelity when wanted: sites belong to regions (roughly the
Abilene/ESnet geography of 2003), and inter-region transfers traverse a
shared regional trunk pair, so a burst between two coasts can congest
other coast-to-coast flows — without perturbing intra-region traffic.

Trunks default to OC-48-class capacity (2.5 Gbit/s), far above Grid3's
aggregate demand, matching the paper's observation that problems lived
at site edges; the ablation-style tests shrink them to show backbone
contention emerging.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.units import MBPS
from .network import Network

#: Region assignment for the 27 catalog sites.
SITE_REGION: Dict[str, str] = {
    "BNL_ATLAS": "east",
    "BU_ATLAS": "east",
    "Harvard_ATLAS": "east",
    "Hampton_HU": "east",
    "JHU_SDSS": "east",
    "UB_ACDC": "east",
    "FNAL_CMS": "midwest",
    "ANL_HEP": "midwest",
    "ANL_MCS": "midwest",
    "IU_ATLAS": "midwest",
    "IU_Grid3": "midwest",
    "UC_ATLAS": "midwest",
    "UC_Grid3": "midwest",
    "UM_ATLAS": "midwest",
    "UWMadison_CS": "midwest",
    "UWM_LIGO": "midwest",
    "UFL_Grid3": "south",
    "UFL_HPC": "south",
    "OU_HEP": "south",
    "UTA_DPCC": "south",
    "Vanderbilt_BTeV": "south",
    "UNM_HPC": "south",
    "CalTech_PG": "west",
    "CalTech_Grid3": "west",
    "UCSD_PG": "west",
    "LBNL_PDSF": "west",
    "KNU_Grid3": "asia",
}

REGIONS = ("east", "midwest", "south", "west", "asia")

#: OC-48 trunk capacity in bytes/s.
DEFAULT_TRUNK_BANDWIDTH = 2500e6 / 8.0

#: The hub region name used by tiered (hub-and-spoke) backbones.
CORE_REGION = "core"


def trunk_name(a: str, b: str) -> str:
    """Canonical link name for the (unordered) region pair."""
    lo, hi = sorted((a, b))
    return f"bb-{lo}-{hi}"


def wire_backbone(
    network: Network,
    sites: Iterable,
    trunk_bandwidth: float = DEFAULT_TRUNK_BANDWIDTH,
    regions: Optional[Dict[str, str]] = None,
    tiered: bool = False,
) -> List[str]:
    """Create the regional trunks and tag sites with their region.

    Two topologies:

    * flat mesh (default, the paper's five regions): a full trunk mesh
      over every region pair, O(R^2) links — fine at R=5, wasteful for
      synthetic fabrics with many regions;
    * tiered (``tiered=True``): every region gets one trunk to a
      ``core`` hub, O(R) links; inter-region routes cross two trunks.
      This is the Abilene-style tier structure synthetic fabrics use.

    Returns the created trunk-link names.  Sites absent from the region
    map stay untagged (their routes remain edge-only).
    """
    regions = regions or SITE_REGION
    if regions is SITE_REGION:
        region_names: Iterable[str] = REGIONS
    else:
        region_names = tuple(sorted(set(regions.values())))
    created: List[str] = []
    if tiered:
        for a in region_names:
            name = trunk_name(a, CORE_REGION)
            if name not in network.links:
                network.add_link(name, trunk_bandwidth)
                created.append(name)
        network.backbone_tiered = True
    else:
        region_names = tuple(region_names)
        for i, a in enumerate(region_names):
            for b in region_names[i + 1:]:
                name = trunk_name(a, b)
                if name not in network.links:
                    network.add_link(name, trunk_bandwidth)
                    created.append(name)
    for site in sites:
        region = regions.get(site.name)
        if region is not None:
            site.region = region
    network.backbone_enabled = True
    return created


def backbone_route(
    src_region: Optional[str],
    dst_region: Optional[str],
    network: Optional[Network] = None,
) -> List[str]:
    """Trunk links between two regions ([] when same/unknown region).

    On a tiered backbone (``network.backbone_tiered``) the route crosses
    the two hub trunks; on the flat mesh it is the single direct trunk.
    """
    if not src_region or not dst_region or src_region == dst_region:
        return []
    if network is not None and getattr(network, "backbone_tiered", False):
        return [
            trunk_name(src_region, CORE_REGION),
            trunk_name(CORE_REGION, dst_region),
        ]
    return [trunk_name(src_region, dst_region)]
