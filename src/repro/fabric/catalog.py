"""The reconstructed Grid3 site catalog.

The paper gives aggregates, not a per-site table: 27 sites, a peak of
2800 processors, 2163 typical, >60 % of CPUs from shared non-dedicated
facilities, Tier1 archives at BNL (ATLAS) and FNAL (CMS), batch systems
OpenPBS / Condor / LSF (§5), and per-VO site-usage counts in Table 1.
This module reconstructs a concrete catalog consistent with all of those
constraints, using the author-list institutions as the site roster.

Reconstruction invariants (pinned by tests):
  * exactly 27 sites;
  * total CPUs = 2800 (the paper's peak);
  * shared-facility CPUs > 60 % of the total;
  * typical availability-weighted CPUs ~ 2163 (the §7 "actual");
  * exactly the two Tier1s; every batch flavour present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.engine import Engine
from ..sim.units import HOUR, MBPS, TB
from .network import Network
from .site import Site, SiteConfig


def mbit(n: float) -> float:
    """Bandwidth in megabits/s expressed in bytes/s."""
    return n * 1e6 / 8.0


@dataclass(frozen=True)
class SiteSpec:
    """Static description of one catalog site."""

    name: str
    institution: str
    owner_vo: str
    cpus: int
    batch_system: str
    shared: bool
    #: Fraction of CPUs typically available to Grid3 (shared sites run
    #: local load; §7: "more than 60% of CPU resources are drawn from
    #: non-dedicated facilities").
    typical_availability: float
    disk_tb: float
    bandwidth_mbit: float
    max_walltime_hours: float
    outbound_connectivity: bool
    tier1: bool = False
    #: Relative CPU speed vs the paper's 2 GHz reference machine (§4.5).
    #: Grid3 hardware spanned roughly 0.8-1.3x; job wall-clock scales
    #: inversely.
    cpu_speed: float = 1.0
    #: WAN region tag.  The 27-site catalog leaves this None (regions
    #: come from ``topology.SITE_REGION``); synthetic catalogs carry
    #: their generated region here.
    region: Optional[str] = None

    def build(self, engine: Engine, network: Network, cpus_per_node: int = 2) -> Site:
        """Instantiate the live Site for this spec."""
        nodes = max(1, self.cpus // cpus_per_node)
        config = SiteConfig(
            max_walltime=self.max_walltime_hours * HOUR,
            outbound_connectivity=self.outbound_connectivity,
            batch_system=self.batch_system,
        )
        return Site(
            engine,
            name=self.name,
            institution=self.institution,
            owner_vo=self.owner_vo,
            nodes=nodes,
            cpus_per_node=cpus_per_node,
            disk_capacity=self.disk_tb * TB,
            network=network,
            access_bandwidth=mbit(self.bandwidth_mbit),
            config=config,
            shared=self.shared,
            tier1=self.tier1,
            cpu_speed=self.cpu_speed,
        )


#: The 27-site roster.  CPUs sum to 2800 (peak); availability-weighted
#: CPUs land at ~2163 (typical).  VO codes are the paper's six.
GRID3_SITES: List[SiteSpec] = [
    # --- Tier1 archives (dedicated) --------------------------------------
    SiteSpec("BNL_ATLAS", "Brookhaven Natl. Lab.", "usatlas", 256, "condor", False, 1.00, 40.0, 1000, 2400, True, tier1=True, cpu_speed=1.15),
    SiteSpec("FNAL_CMS", "Fermi Natl. Accelerator Lab.", "uscms", 320, "pbs", False, 1.00, 50.0, 1000, 2400, True, tier1=True, cpu_speed=1.15),
    # --- dedicated VO facilities ------------------------------------------
    SiteSpec("CalTech_PG", "Caltech", "uscms", 64, "condor", False, 1.00, 3.0, 622, 72, True),
    SiteSpec("CalTech_Grid3", "Caltech", "uscms", 32, "condor", False, 1.00, 1.5, 622, 48, True),
    SiteSpec("UFL_Grid3", "U. Florida", "uscms", 84, "condor", False, 1.00, 3.0, 155, 72, True),
    SiteSpec("IU_Grid3", "Indiana U.", "ivdgl", 32, "condor", False, 1.00, 1.0, 622, 48, True),
    SiteSpec("UCSD_PG", "U.C. San Diego", "uscms", 128, "condor", False, 1.00, 4.0, 622, 72, True, cpu_speed=1.1),
    SiteSpec("UC_Grid3", "U. Chicago", "ivdgl", 32, "condor", False, 1.00, 1.0, 155, 48, True),
    SiteSpec("Vanderbilt_BTeV", "Vanderbilt U.", "btev", 60, "pbs", False, 1.00, 2.0, 155, 120, True),
    # --- shared / non-dedicated facilities (>60 % of CPUs) -----------------
    SiteSpec("ANL_HEP", "Argonne Natl. Lab.", "ivdgl", 64, "pbs", True, 0.70, 2.0, 622, 72, True),
    SiteSpec("ANL_MCS", "Argonne Natl. Lab.", "ivdgl", 80, "pbs", True, 0.60, 2.5, 622, 48, True),
    SiteSpec("BU_ATLAS", "Boston U.", "usatlas", 96, "pbs", True, 0.70, 3.0, 155, 72, True),
    SiteSpec("UFL_HPC", "U. Florida", "uscms", 160, "pbs", True, 0.60, 4.0, 622, 36, False),
    SiteSpec("Hampton_HU", "Hampton U.", "usatlas", 30, "condor", True, 0.60, 0.5, 45, 24, True, cpu_speed=0.8),
    SiteSpec("Harvard_ATLAS", "Harvard U.", "usatlas", 40, "pbs", True, 0.60, 1.0, 155, 48, True),
    SiteSpec("IU_ATLAS", "Indiana U.", "usatlas", 64, "pbs", True, 0.70, 2.0, 622, 72, True),
    SiteSpec("JHU_SDSS", "Johns Hopkins U.", "sdss", 48, "condor", True, 0.70, 2.0, 155, 48, True),
    SiteSpec("KNU_Grid3", "Kyungpook Natl. U./KISTI", "uscms", 32, "pbs", True, 0.60, 1.0, 45, 48, False, cpu_speed=0.85),
    SiteSpec("LBNL_PDSF", "Lawrence Berkeley Natl. Lab.", "usatlas", 240, "lsf", True, 0.60, 8.0, 622, 24, False, cpu_speed=0.9),
    SiteSpec("UB_ACDC", "U. Buffalo", "ivdgl", 202, "pbs", True, 0.65, 4.0, 622, 36, True),
    SiteSpec("UC_ATLAS", "U. Chicago", "usatlas", 64, "pbs", True, 0.70, 2.0, 155, 72, True),
    SiteSpec("UM_ATLAS", "U. Michigan", "usatlas", 96, "pbs", True, 0.65, 3.0, 622, 72, True),
    SiteSpec("UNM_HPC", "U. New Mexico", "usatlas", 128, "pbs", True, 0.62, 3.0, 155, 24, False),
    SiteSpec("OU_HEP", "U. Oklahoma", "usatlas", 40, "pbs", True, 0.65, 1.0, 155, 48, True),
    SiteSpec("UTA_DPCC", "U. Texas Arlington", "usatlas", 160, "pbs", True, 0.65, 4.0, 155, 96, True),
    SiteSpec("UWMadison_CS", "U. Wisconsin-Madison", "ivdgl", 120, "condor", True, 0.70, 3.0, 622, 48, True),
    SiteSpec("UWM_LIGO", "U. Wisconsin-Milwaukee", "ligo", 128, "condor", True, 0.65, 4.0, 155, 48, False),
]

#: The six configured virtual organisations (§5).
GRID3_VOS = ["usatlas", "uscms", "sdss", "ligo", "btev", "ivdgl"]

#: Where each VO archives its production output (§4.1, §4.2, §4.4).
VO_HOME_SITE = {
    "usatlas": "BNL_ATLAS",
    "uscms": "FNAL_CMS",
    "sdss": "FNAL_CMS",       # SDSS is Fermilab-hosted
    "ligo": "UWM_LIGO",
    "btev": "Vanderbilt_BTeV",
    "ivdgl": "UB_ACDC",
}


def peak_cpus(specs: Optional[List[SiteSpec]] = None) -> int:
    """Total CPU count across the catalog (the paper's 2800 peak)."""
    return sum(s.cpus for s in (specs or GRID3_SITES))


def typical_cpus(specs: Optional[List[SiteSpec]] = None) -> float:
    """Availability-weighted CPU count (the paper's 2163 'actual')."""
    return sum(s.cpus * s.typical_availability for s in (specs or GRID3_SITES))


def shared_fraction(specs: Optional[List[SiteSpec]] = None) -> float:
    """Fraction of CPUs at shared facilities (paper: >60 %)."""
    specs = specs or GRID3_SITES
    total = sum(s.cpus for s in specs)
    shared = sum(s.cpus for s in specs if s.shared)
    return shared / total if total else 0.0


#: Cached name->spec indexes keyed by catalog identity; validated by
#: (length, first element) so an in-place rebuild of the same list
#: object is still detected.  Bounded: one entry per distinct catalog
#: list in flight (callers hold a handful at most).
_SPEC_INDEX: Dict[int, tuple] = {}


def spec_by_name(name: str, specs: Optional[List[SiteSpec]] = None) -> SiteSpec:
    """Catalog lookup; raises KeyError for unknown sites.

    O(1) via a per-catalog cached index — this is a hot path when
    1000-site synthetic fabrics resolve specs per event.
    """
    catalog = specs if specs is not None else GRID3_SITES
    key = id(catalog)
    cached = _SPEC_INDEX.get(key)
    if (
        cached is None
        or cached[0] != len(catalog)
        or (catalog and cached[1] is not catalog[0])
    ):
        if len(_SPEC_INDEX) > 64:
            _SPEC_INDEX.clear()
        index: Dict[str, SiteSpec] = {}
        for spec in catalog:
            # First entry wins, matching the old linear scan.
            index.setdefault(spec.name, spec)
        cached = (len(catalog), catalog[0] if catalog else None, index)
        _SPEC_INDEX[key] = cached
    spec = cached[2].get(name)
    if spec is None:
        raise KeyError(name)
    return spec


def scaled_catalog(scale: float) -> List[SiteSpec]:
    """A proportionally shrunken catalog for fast tests/benches.

    CPU counts divide by ``scale`` (minimum 2 per site); every site,
    VO, and attribute distribution is preserved so workload *shapes*
    survive scaling.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    out = []
    for s in GRID3_SITES:
        cpus = max(2, int(round(s.cpus / scale)))
        out.append(
            SiteSpec(
                s.name, s.institution, s.owner_vo, cpus, s.batch_system,
                s.shared, s.typical_availability, s.disk_tb, s.bandwidth_mbit,
                s.max_walltime_hours, s.outbound_connectivity, s.tier1,
                s.cpu_speed,
            )
        )
    return out


def build_sites(
    engine: Engine,
    network: Network,
    specs: Optional[List[SiteSpec]] = None,
) -> Dict[str, Site]:
    """Instantiate live Sites for every spec, keyed by name."""
    return {spec.name: spec.build(engine, network) for spec in (specs or GRID3_SITES)}
