"""The Grid3 fabric: sites, clusters, storage elements, and the WAN."""

from .catalog import (
    GRID3_SITES,
    GRID3_VOS,
    VO_HOME_SITE,
    SiteSpec,
    build_sites,
    mbit,
    peak_cpus,
    scaled_catalog,
    shared_fraction,
    spec_by_name,
    typical_cpus,
)
from .cluster import Cluster, WorkerNode
from .network import Flow, Link, Network
from .site import Site, SiteConfig
from .topology import (
    CORE_REGION,
    DEFAULT_TRUNK_BANDWIDTH,
    REGIONS,
    SITE_REGION,
    backbone_route,
    trunk_name,
    wire_backbone,
)
from .storage import FileObject, Reservation, StorageElement
from .synthesize import (
    ANCHOR_SITES,
    site_regions,
    summarize,
    synthesize,
    synthetic_policies,
)

__all__ = [
    "ANCHOR_SITES",
    "CORE_REGION",
    "Cluster",
    "FileObject",
    "Flow",
    "GRID3_SITES",
    "GRID3_VOS",
    "Link",
    "Network",
    "Reservation",
    "DEFAULT_TRUNK_BANDWIDTH",
    "REGIONS",
    "SITE_REGION",
    "Site",
    "SiteConfig",
    "SiteSpec",
    "StorageElement",
    "VO_HOME_SITE",
    "WorkerNode",
    "backbone_route",
    "build_sites",
    "trunk_name",
    "wire_backbone",
    "mbit",
    "peak_cpus",
    "scaled_catalog",
    "shared_fraction",
    "site_regions",
    "spec_by_name",
    "summarize",
    "synthesize",
    "synthetic_policies",
    "typical_cpus",
]
