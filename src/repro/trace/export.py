"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSONL.

The Chrome trace-event format (``chrome://tracing`` / ui.perfetto.dev)
gives the Grid2003 repro the visual NetLogger "lifeline" view the paper
leans on, but for *whole jobs*: one process row per trace, one complete
("ph: X") event per span.  The JSONL dump is the machine-readable
counterpart — one span per line, stable field order — for diffing runs
and feeding external tooling.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .spans import Span, SpanStore


def span_to_dict(span: Span) -> Dict[str, object]:
    """Flat JSON-safe mapping for one span (stable key order)."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "phase": span.phase,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "status": span.status,
        "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
    }


def to_jsonl(roots: Iterable[Span]) -> str:
    """One span per line, preorder within each trace, traces in
    insertion (simulation) order — byte-identical across same-seed runs.
    """
    lines = [
        json.dumps(span_to_dict(span), sort_keys=True)
        for root in roots
        for span in root.walk()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _tid_rows(root: Span) -> Dict[int, int]:
    """Assign each span a row (Chrome ``tid``) inside its trace.

    Chrome's renderer stacks nested events on one row only when they
    strictly nest; sibling spans that overlap in time (parallel
    transfers) need distinct rows.  Depth-based rows plus a per-depth
    overlap shift keeps the layout readable without a real layout
    engine.
    """
    rows: Dict[int, int] = {root.span_id: 0}
    last_end_at_row: Dict[int, float] = {}

    def place(span: Span, depth: int) -> None:
        row = depth
        while last_end_at_row.get(row, float("-inf")) > span.start + 1e-9:
            row += 1
        rows[span.span_id] = row
        if span.end >= 0:
            last_end_at_row[row] = max(
                last_end_at_row.get(row, float("-inf")), span.end
            )
        for child in span.children:
            place(child, depth + 1)

    for child in root.children:
        place(child, 1)
    return rows


def to_chrome_trace(
    roots: Iterable[Span], clip_open_at: Optional[float] = None
) -> Dict[str, object]:
    """Chrome trace-event JSON object for a set of trace trees.

    Each trace becomes a ``pid`` with a metadata name row; each span a
    complete event (``ph: "X"``) with microsecond ``ts``/``dur``.  Spans
    still open are clipped at ``clip_open_at`` (default: their start, so
    they render as instants rather than stretching to infinity).
    """
    events: List[Dict[str, object]] = []
    for root in roots:
        pid = root.trace_id
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f"{root.name} [{root.status}]"},
        })
        rows = _tid_rows(root)
        for span in root.walk():
            end = span.end
            if end < 0:
                end = clip_open_at if clip_open_at is not None else span.start
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": rows.get(span.span_id, 0),
                "ts": int(round(span.start * 1e6)),
                "dur": max(0, int(round((end - span.start) * 1e6))),
                "name": span.name,
                "cat": span.phase or "span",
                "args": {
                    "status": span.status,
                    **{k: span.attrs[k] for k in sorted(span.attrs)},
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(store: SpanStore, path: str,
                       clip_open_at: Optional[float] = None) -> int:
    """Write the whole store as Perfetto-loadable JSON; returns event
    count."""
    doc = to_chrome_trace(store.roots(), clip_open_at=clip_open_at)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])  # type: ignore[arg-type]


def write_jsonl(store: SpanStore, path: str) -> int:
    """Write the whole store as a JSONL span dump; returns span count."""
    text = to_jsonl(store.roots())
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")
