"""Span primitives: the Dapper/OpenTelemetry-style core, sized for a DES.

A :class:`Span` is one timed operation in a job's life (an attempt, a
queue wait, a GridFTP transfer); spans form a tree rooted at the grid
job, linked by object references and ``(trace_id, span_id, parent_id)``
triples.  :class:`JobTracer` mints spans against simulated time and
files completed traces into a bounded :class:`SpanStore`.

Determinism contract (the §8 troubleshooting layer must never change
what it observes):

* span creation reads ``engine.now`` and appends to Python lists — it
  schedules **no events** and draws **no RNG**, so a traced run's event
  order is identical to an untraced run's;
* trace/span ids come from per-tracer counters, so same-seed runs emit
  byte-identical span dumps;
* with tracing disabled the :data:`NULL_TRACER` / :data:`NULL_SPAN`
  singletons absorb every call as a no-op, so instrumented call sites
  cost a method call and nothing else.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Phase labels the critical-path analyzer attributes makespan to.
PHASES = ("queue", "stage-in", "compute", "stage-out", "retry", "other")


class Span:
    """One timed operation inside a trace tree.

    ``end < 0`` means the span is still open.  ``phase`` is the
    critical-path category ("queue", "stage-in", "compute", "stage-out",
    "attempt", "transfer", "submit", "register", ...); ``name`` is the
    human label shown in renders and exports.
    """

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent_id", "name", "phase",
        "start", "end", "status", "attrs", "children",
    )

    def __init__(
        self,
        tracer: "JobTracer",
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        phase: str,
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.phase = phase
        self.start = start
        self.end = -1.0
        self.status = "open"
        self.attrs = attrs
        self.children: List["Span"] = []

    # -- state -------------------------------------------------------------
    @property
    def open(self) -> bool:
        """True until :meth:`finish` is called."""
        return self.end < 0

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) seconds; -1 while open."""
        if self.end < 0:
            return -1.0
        return self.end - self.start

    # -- building the tree ---------------------------------------------------
    def child(self, name: str, phase: str = "", **attrs: object) -> "Span":
        """Start a child span at the current simulated instant."""
        return self.tracer._start(self, name, phase, attrs)

    def open_child(self, name: str) -> Optional["Span"]:
        """The most recent still-open direct child named ``name``."""
        for span in reversed(self.children):
            if span.name == name and span.end < 0:
                return span
        return None

    def annotate(self, **attrs: object) -> "Span":
        """Attach key/value attributes without changing timing."""
        self.attrs.update(attrs)
        return self

    # -- ending ---------------------------------------------------------------
    def finish(self, status: str = "ok", **attrs: object) -> "Span":
        """Close the span at the current simulated instant (idempotent)."""
        if self.end < 0:
            self.end = self.tracer.engine.now
            self.status = status
            if attrs:
                self.attrs.update(attrs)
            self.tracer._finished(self)
        return self

    def close_subtree(self, status: str = "ok") -> None:
        """Finish this span and every still-open descendant.

        Used when a job dies mid-phase: the phase span the failure
        escaped from is closed here, at the failure instant, carrying
        the terminal status.
        """
        for span in self.children:
            if span.end < 0:
                span.close_subtree(status)
        self.finish(status)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, preorder (start order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = "open" if self.end < 0 else f"{self.duration:.3f}s {self.status}"
        return f"<Span {self.name!r} {self.phase or '-'} {state}>"


class _NullSpan:
    """The disabled-tracing span: absorbs the whole Span API as no-ops."""

    __slots__ = ()

    trace_id = -1
    span_id = -1
    parent_id = None
    name = ""
    phase = ""
    start = 0.0
    end = 0.0
    status = "ok"
    attrs: Dict[str, object] = {}
    children: List = []
    open = False
    duration = 0.0

    def __bool__(self) -> bool:
        return False

    def child(self, name: str, phase: str = "", **attrs: object) -> "_NullSpan":
        return self

    def open_child(self, name: str) -> None:
        return None

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self

    def finish(self, status: str = "ok", **attrs: object) -> "_NullSpan":
        return self

    def close_subtree(self, status: str = "ok") -> None:
        return None

    def walk(self):
        return iter(())

    def __repr__(self) -> str:
        return "<NullSpan>"


#: Shared no-op span (falsy, so ``job.trace or NULL_SPAN`` composes).
NULL_SPAN = _NullSpan()


class SpanStore:
    """Bounded, deterministic archive of trace trees.

    Traces are kept whole: eviction drops the **oldest trace's entire
    tree**, never individual spans, so every retained trace stays a
    single rooted tree.  Insertion order is simulation order, which is
    identical across same-seed runs.
    """

    def __init__(self, max_traces: int = 20_000) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self._roots: "OrderedDict[int, Span]" = OrderedDict()
        self._job_index: Dict[int, int] = {}
        self._trace_jobs: Dict[int, List[int]] = {}
        #: Traces dropped by the ring bound (observability of the bound).
        self.evicted = 0

    # -- writes (tracer-internal) -------------------------------------------
    def add_root(self, root: Span) -> None:
        self._roots[root.trace_id] = root
        if len(self._roots) > self.max_traces:
            old_id, _old = self._roots.popitem(last=False)
            for job_id in self._trace_jobs.pop(old_id, ()):
                self._job_index.pop(job_id, None)
            self.evicted += 1

    def bind_job(self, job_id: int, trace_id: int) -> None:
        """Join an execution-side job id to its trace (the §8 link)."""
        if trace_id in self._roots:
            self._job_index[job_id] = trace_id
            self._trace_jobs.setdefault(trace_id, []).append(job_id)

    # -- reads ----------------------------------------------------------------
    def __len__(self) -> int:
        """Number of retained traces."""
        return len(self._roots)

    def span_count(self) -> int:
        """Total spans across retained traces (walks the trees)."""
        return sum(1 for root in self._roots.values() for _ in root.walk())

    def roots(self) -> List[Span]:
        """Trace roots, oldest first."""
        return list(self._roots.values())

    def get(self, trace_id: int) -> Optional[Span]:
        """Root span of one trace."""
        return self._roots.get(trace_id)

    def trace_for_job(self, job_id: int) -> Optional[Span]:
        """Root span of the trace owning an execution-side job id."""
        trace_id = self._job_index.get(job_id)
        return self._roots.get(trace_id) if trace_id is not None else None

    def jobs_for(self, trace_id: int) -> Tuple[int, ...]:
        """Execution-side job ids bound to one trace (attempt order)."""
        return tuple(self._trace_jobs.get(trace_id, ()))

    def job_ids(self) -> List[int]:
        """Every bound execution-side job id, ascending."""
        return sorted(self._job_index)

    def spans(self, trace_id: int) -> List[Span]:
        """One trace's spans, preorder ([] for unknown traces)."""
        root = self._roots.get(trace_id)
        return list(root.walk()) if root is not None else []


class JobTracer:
    """Mints spans against an engine's clock; archives whole traces.

    ``metrics`` is a lazily created
    :class:`~repro.monitoring.core.MetricStore`: when a job trace is
    finalized its critical-path breakdown is published as ``trace.*``
    samples tagged by VO, feeding the same query layer as every other
    monitoring producer.
    """

    enabled = True

    def __init__(self, engine, max_traces: int = 20_000) -> None:
        self.engine = engine
        self.store = SpanStore(max_traces)
        self._trace_seq = 0
        self._span_seq = 0
        self._metrics = None
        #: Open-span stack for the kernel tracer's active-span label.
        self._stack: List[Span] = []

    # -- metrics sink (lazy import keeps repro.trace cycle-free) -------------
    @property
    def metrics(self):
        """The ``trace.*`` MetricStore (created on first touch)."""
        if self._metrics is None:
            from ..monitoring.core import MetricStore
            self._metrics = MetricStore()
        return self._metrics

    # -- span factory ---------------------------------------------------------
    def _start(self, parent: Optional[Span], name: str, phase: str,
               attrs: Dict[str, object]) -> Span:
        self._span_seq += 1
        span = Span(
            tracer=self,
            trace_id=parent.trace_id if parent is not None else self._trace_seq,
            span_id=self._span_seq,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            phase=phase,
            start=self.engine.now,
            attrs=attrs,
        )
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        return span

    def _finished(self, span: Span) -> None:
        stack = self._stack
        while stack and stack[-1].end >= 0:
            stack.pop()

    def start_trace(self, name: str, kind: str = "job", **attrs: object) -> Span:
        """Open a new trace; returns its root span."""
        self._trace_seq += 1
        attrs = dict(attrs)
        attrs["kind"] = kind
        root = self._start(None, name, kind, attrs)
        self.store.add_root(root)
        return root

    def record(
        self,
        parent: Optional[Span],
        name: str,
        start: float,
        end: float,
        phase: str = "",
        status: str = "ok",
        **attrs: object,
    ) -> Span:
        """Retrospectively file a span with explicit times.

        For importing externally reconstructed timelines (NetLogger
        lifelines, hand-built test fixtures) into a trace tree.  A
        ``parent`` of None opens a new trace rooted at this span.
        """
        if parent is None:
            span = self.start_trace(name, kind=phase or "record", **attrs)
        else:
            span = self._start(parent, name, phase, dict(attrs))
        span.start = start
        if end >= 0:
            span.end = end
            span.status = status
            self._finished(span)
        return span

    def bind_job(self, job_id: int, span: Span) -> None:
        """Index an execution-side job id under ``span``'s trace."""
        self.store.bind_job(job_id, span.trace_id)

    # -- lifecycle ------------------------------------------------------------
    def finalize(self, root: Span, status: str = "ok") -> None:
        """Close a finished trace and publish its ``trace.*`` metrics.

        Any spans the job's failure path left open are closed here at
        the current instant with the trace's terminal status.
        """
        root.close_subtree(status)
        if root.attrs.get("kind") != "job":
            return
        from ..monitoring.core import MetricSample, make_tags
        from .analysis import job_breakdown
        breakdown = job_breakdown(root)
        vo = str(root.attrs.get("vo", ""))
        tags = make_tags(vo=vo, status=status)
        now = self.engine.now
        metrics = self.metrics
        metrics.append(
            MetricSample(now, "trace.makespan", breakdown["makespan"], tags)
        )
        for phase in PHASES:
            value = breakdown.get(phase, 0.0)
            if value:
                metrics.append(
                    MetricSample(now, f"trace.phase.{phase}", value, tags)
                )

    # -- kernel-tracer bridge -------------------------------------------------
    def current_label(self) -> str:
        """Name of the innermost open span (best effort, for the kernel
        :class:`~repro.sim.tracing.Tracer`'s per-event span column)."""
        stack = self._stack
        while stack and stack[-1].end >= 0:
            stack.pop()
        return stack[-1].name if stack else ""

    def __repr__(self) -> str:
        return f"<JobTracer traces={len(self.store)} spans~{self._span_seq}>"


class NullTracer:
    """Disabled tracing: the same API, zero work, no archive."""

    enabled = False
    store = None
    metrics = None
    engine = None

    def start_trace(self, name: str, kind: str = "job", **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def record(self, parent, name, start, end, phase="", status="ok", **attrs):
        return NULL_SPAN

    def bind_job(self, job_id: int, span) -> None:
        return None

    def finalize(self, root, status: str = "ok") -> None:
        return None

    def current_label(self) -> str:
        return ""

    def __repr__(self) -> str:
        return "<NullTracer>"


#: Shared disabled tracer, handed out when ``Grid3Config.tracing`` is off.
NULL_TRACER = NullTracer()
