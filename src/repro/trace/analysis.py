"""Critical-path analysis over span trees.

Answers the Grid2003 operations question (§4.7): *where did this job
spend its time?*  :func:`job_breakdown` partitions one job's makespan
into the five phases the paper's troubleshooting workflow cares about —
queue, stage-in, compute, stage-out, retry — plus an ``other`` residual,
so the parts always sum exactly to the whole.  The grid-wide helpers
aggregate those partitions per VO and rank the slowest traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import PHASES, Span, SpanStore

#: Phases measured from spans inside the final attempt.  ``register``
#: spans (RLS writes at the tail of the job) are folded into stage-out.
_PHASE_OF = {
    "queue": "queue",
    "stage-in": "stage-in",
    "compute": "compute",
    "stage-out": "stage-out",
    "register": "stage-out",
}


def _final_attempt(root: Span) -> Optional[Span]:
    """Last attempt span under a job root (None for attempt-less roots)."""
    last = None
    for span in root.children:
        if span.phase == "attempt":
            last = span
    return last


def job_breakdown(root: Span) -> Dict[str, float]:
    """Partition one job trace's makespan into phase durations.

    The partition invariant — ``sum(phases) == makespan`` to float
    tolerance — holds by construction:

    * ``retry``    = time from trace start to the final attempt's start
      (all earlier failed attempts plus their backoff waits);
    * ``queue`` / ``stage-in`` / ``compute`` / ``stage-out`` = measured
      phase spans inside the final attempt (register folds into
      stage-out);
    * ``other``    = the residual (matchmaking, GRAM handshakes,
      inter-phase glue) so the identity is exact.

    Works on still-open traces too (open spans are clipped at the last
    closed instant seen in the tree), but the invariant is only
    guaranteed for finalized traces.
    """
    out = {phase: 0.0 for phase in PHASES}
    end = root.end if root.end >= 0 else max(
        (s.end for s in root.walk() if s.end >= 0), default=root.start
    )
    makespan = max(0.0, end - root.start)
    out["makespan"] = makespan
    out["status"] = root.status  # type: ignore[assignment]

    final = _final_attempt(root)
    if final is None:
        out["other"] = makespan
        return out

    out["retry"] = max(0.0, final.start - root.start)
    for span in final.walk():
        phase = _PHASE_OF.get(span.phase)
        if phase is not None and span.end >= 0:
            out[phase] += span.end - span.start
    measured = sum(out[p] for p in PHASES if p != "other")
    out["other"] = max(0.0, makespan - measured)
    return out


def aggregate_breakdown(
    roots: Iterable[Span], vo: Optional[str] = None
) -> Dict[str, object]:
    """Grid-wide phase totals across job traces (optionally one VO).

    Returns ``{"jobs": n, "vo": vo, "totals": {phase: seconds},
    "mean": {phase: seconds}, "share": {phase: fraction}}``.
    """
    totals = {phase: 0.0 for phase in PHASES}
    totals["makespan"] = 0.0
    count = 0
    for root in roots:
        if root.attrs.get("kind") != "job":
            continue
        if vo is not None and root.attrs.get("vo") != vo:
            continue
        breakdown = job_breakdown(root)
        for key in totals:
            totals[key] += breakdown[key]
        count += 1
    mean = {k: (v / count if count else 0.0) for k, v in totals.items()}
    whole = totals["makespan"]
    share = {
        phase: (totals[phase] / whole if whole else 0.0) for phase in PHASES
    }
    return {"jobs": count, "vo": vo, "totals": totals, "mean": mean,
            "share": share}


def slowest_traces(store: SpanStore, n: int = 10) -> List[Tuple[float, Span]]:
    """The ``n`` longest-makespan job traces, slowest first.

    Ties break on trace id (insertion order), keeping the ranking
    deterministic across same-seed runs.
    """
    ranked = sorted(
        ((job_breakdown(root)["makespan"], root)
         for root in store.roots() if root.attrs.get("kind") == "job"),
        key=lambda pair: (-pair[0], pair[1].trace_id),
    )
    return ranked[:n]


def render_span_tree(root: Span) -> List[str]:
    """ASCII render of one trace tree, one line per span.

    Offsets are relative to the root start so the timeline reads like a
    Gantt chart in text form.
    """
    lines = [
        f"trace {root.trace_id}: {root.name}  "
        f"[{root.status}, makespan {max(0.0, root.end - root.start):.1f}s]"
    ]

    def emit(span: Span, depth: int) -> None:
        offset = span.start - root.start
        dur = f"{span.duration:.1f}s" if span.end >= 0 else "open"
        phase = f" [{span.phase}]" if span.phase else ""
        note = f" !{span.status}" if span.status not in ("ok", "open") else ""
        lines.append(
            f"  {'  ' * depth}+{offset:9.1f}s  {span.name:<28s} "
            f"{dur:>10s}{phase}{note}"
        )
        for child in span.children:
            emit(child, depth + 1)

    for child in root.children:
        emit(child, 0)
    return lines


def render_breakdown(agg: Dict[str, object]) -> List[str]:
    """Text table for an :func:`aggregate_breakdown` result."""
    scope = f"vo={agg['vo']}" if agg.get("vo") else "all VOs"
    lines = [f"phase breakdown ({scope}, {agg['jobs']} jobs):"]
    mean: Dict[str, float] = agg["mean"]  # type: ignore[assignment]
    share: Dict[str, float] = agg["share"]  # type: ignore[assignment]
    for phase in PHASES:
        lines.append(
            f"  {phase:<10s} {mean.get(phase, 0.0):10.1f}s mean "
            f"{100.0 * share.get(phase, 0.0):6.1f}%"
        )
    lines.append(f"  {'makespan':<10s} {mean.get('makespan', 0.0):10.1f}s mean")
    return lines
