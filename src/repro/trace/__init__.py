"""Distributed tracing for the Grid3 repro: spans, critical paths,
exports.

The paper's operations sections (§4.7, §5) reconstruct job paths by
correlating NetLogger GridFTP lifelines with MonALISA service metrics
by hand; this package gives the repro the cross-layer view directly — a
span tree per grid job threading submission → gatekeeper → queue →
stage-in → compute → stage-out → registration, a critical-path
analyzer over the tree, and Chrome-trace/JSONL exporters.

Module-level imports here must stay dependency-light (stdlib only):
``middleware.gridftp`` imports this package, so pulling in
``repro.core`` or ``repro.monitoring`` at import time would cycle.
"""

from .analysis import (
    aggregate_breakdown,
    job_breakdown,
    render_breakdown,
    render_span_tree,
    slowest_traces,
)
from .export import (
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .spans import (
    NULL_SPAN,
    NULL_TRACER,
    PHASES,
    JobTracer,
    NullTracer,
    Span,
    SpanStore,
)

__all__ = [
    "PHASES",
    "Span",
    "SpanStore",
    "JobTracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "job_breakdown",
    "aggregate_breakdown",
    "slowest_traces",
    "render_span_tree",
    "render_breakdown",
    "span_to_dict",
    "to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
