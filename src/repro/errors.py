"""The Grid3 error taxonomy.

Section 6.1 of the paper attributes ~90 % of job failures to *site*
problems — "disk filling errors, gatekeeper overloading, or network
interruptions" — with the remainder application-caused.  Every failure
the simulation can produce is an instance of one of these classes, so the
analysis layer can reproduce the paper's failure breakdowns by type.
"""

from __future__ import annotations


class GridError(Exception):
    """Base class for everything that can go wrong on Grid3."""

    #: Coarse category used by the failure-analysis reports: "site",
    #: "application", or "infrastructure".
    category = "infrastructure"


# --- site-caused failures (the paper's dominant class, §6.1) ------------
class SiteError(GridError):
    """A failure attributable to the execution site."""

    category = "site"


class StorageFullError(SiteError):
    """A disk/storage element had no room (the 'disk filling' class)."""


class GatekeeperOverloadError(SiteError):
    """The gatekeeper shed load or timed out under submission pressure."""


class NetworkInterruptionError(SiteError):
    """A WAN/access-link interruption broke a transfer or callback."""


class NodeFailureError(SiteError):
    """A worker node died or was rolled over while the job ran (§6.1:
    'we did not handle ACDC's nightly roll over of worker nodes')."""


class SiteMisconfigurationError(SiteError):
    """Site configuration problem (§6.2: 'jobs often failed due to site
    configuration problems')."""


class ServiceFailureError(SiteError):
    """A site service crashed, killing jobs in groups (§6.2: 'a service
    would fail and all jobs submitted to a site would die')."""


class WalltimeExceededError(SiteError):
    """The batch system killed the job at its walltime limit (§6.4
    criterion 3)."""


# --- application-caused failures -----------------------------------------
class ApplicationError(GridError):
    """The application itself failed (bad data, code bug, ...)."""

    category = "application"


# --- middleware / protocol errors ---------------------------------------
class AuthenticationError(GridError):
    """GSI authentication / gridmap lookup failed."""


class AuthorizationError(GridError):
    """Authenticated identity not authorised for the request."""


class SubmissionError(GridError):
    """GRAM job submission was rejected."""


class TransferError(GridError):
    """A GridFTP transfer failed outright."""


class ReplicaNotFoundError(GridError):
    """RLS had no replica for the requested logical file."""


class ServiceUnavailableError(SiteError):
    """A service was down when contacted.  In practice the services jobs
    touch (gatekeeper, GridFTP, GRIS) are site services, so this counts
    toward the paper's dominant site-failure class."""


class PackagingError(GridError):
    """Pacman installation / dependency resolution failed."""


class ReservationError(GridError):
    """SRM space reservation could not be satisfied."""


class ConfigurationError(GridError):
    """A :class:`~repro.core.grid3.Grid3Config` failed validation: an
    unknown knob, an out-of-range value, or contradictory settings."""


class PolicyRejectionError(SubmissionError):
    """A site's usage policy refused the job at match time (VO not in
    the allow-list, or the walltime request exceeds the site's runtime
    class).  Counts toward the site-failure class like any other
    submission rejection."""
