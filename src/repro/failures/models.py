"""Failure models: the empirical Grid3 failure classes as parameters.

§6.1: "Approximately 90% of failures were due to site problems: disk
filling errors, gatekeeper overloading, or network interruptions.  For
example, we did not handle ACDC's nightly roll over of worker nodes
gracefully."  §6.2: "more frequently a disk would fill up or a service
would fail and all jobs submitted to a site would die."

Disk-full and gatekeeper overload *emerge* from the substrate (bounded
SEs, the §6.4 load model); this module parameterises the externally
injected classes: service crashes, network interruptions, node
failures, and the ACDC nightly rollover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim.units import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class FailureProfile:
    """Per-site stochastic failure rates (mean interarrival times).

    ``None`` disables a class.  Defaults are calibrated so a ~30-day
    full-mix run lands near the paper's observed per-application failure
    rates (~30 % overall, ~90 % of failures site-caused) once combined
    with the emergent disk-full/overload classes.
    """

    #: Mean time between site-service crashes (gridftp, gatekeeper, or
    #: the batch system).  GridFTP/gatekeeper outages fail only the jobs
    #: that *touch* them while down; a batch-system crash kills every
    #: running job at the site — §6.2's "all jobs submitted to a site
    #: would die" class.
    service_failure_interval: Optional[float] = 5 * DAY
    #: Relative likelihood that a service crash is the batch system
    #: (the job-group-killing kind) vs a data/submission service.
    batch_crash_weight: float = 0.25
    #: How long a crashed service stays down before ops restart it.
    service_repair_time: float = 4 * HOUR
    #: Mean time between dCache disk-pool failures, at sites whose
    #: storage is a pooled Tier1 store (no-op for flat SEs).  Off by
    #: default: pool hardware trouble is a Tier1-bench concern, not
    #: part of the calibrated Grid3 baseline mix.
    pool_failure_interval: Optional[float] = None
    #: How long a failed pool stays offline before repair.
    pool_repair_time: float = 6 * HOUR
    #: Mean time between WAN/access-link interruptions per site.
    network_interruption_interval: Optional[float] = 10 * DAY
    #: Interruption duration.
    network_outage_duration: float = 30 * MINUTE
    #: Per-node mean time between hardware failures.  A site's failure
    #: rate scales with its node count, so per-*job* mortality is
    #: invariant under catalog scaling.
    node_mtbf: Optional[float] = 250 * DAY
    #: Node repair time.
    node_repair_time: float = 12 * HOUR
    #: Sites with a nightly maintenance rollover: name -> fraction of
    #: nodes rebooted.  The paper's example is ACDC at Buffalo.
    nightly_rollover: Dict[str, float] = field(
        default_factory=lambda: {"UB_ACDC": 0.25}
    )
    #: Local hour (0-23) the rollover runs.
    rollover_hour: int = 3

    @classmethod
    def disabled(cls) -> "FailureProfile":
        """A profile with every injected class off (for clean baselines)."""
        return cls(
            service_failure_interval=None,
            network_interruption_interval=None,
            node_mtbf=None,
            nightly_rollover={},
        )

    @classmethod
    def early(cls) -> "FailureProfile":
        """The October/November shake-out rates behind §6.1's ~30 %
        ATLAS failure observation: services flapping, rollover not yet
        handled, frequent link trouble."""
        return cls(
            service_failure_interval=2 * DAY,
            batch_crash_weight=0.4,
            network_interruption_interval=5 * DAY,
            node_mtbf=120 * DAY,
            nightly_rollover={"UB_ACDC": 0.35},
        )

    @classmethod
    def calm(cls) -> "FailureProfile":
        """Post-stabilisation rates (§7: 'Once a site becomes stable, it
        usually remains so except for hardware problems')."""
        return cls(
            service_failure_interval=30 * DAY,
            network_interruption_interval=45 * DAY,
            node_mtbf=500 * DAY,
            nightly_rollover={"UB_ACDC": 0.25},
        )


class FailureSchedule:
    """Time-varying failure regimes — the paper's stabilisation arc.

    §7: "We added applications and sites continuously throughout SC2003
    ... Once a site becomes stable, it usually remains so except for
    hardware problems.  The infrastructure has been stable since
    November."  A schedule is an ordered list of (switch_time, profile)
    pairs; the profile in force at any instant is the last one whose
    switch time has passed.
    """

    def __init__(self, eras) -> None:
        eras = sorted(eras, key=lambda pair: pair[0])
        if not eras:
            raise ValueError("schedule needs at least one era")
        if eras[0][0] > 0:
            raise ValueError("first era must start at (or before) t=0")
        self.eras = eras

    def at(self, time: float) -> FailureProfile:
        """The profile in force at ``time``."""
        current = self.eras[0][1]
        for switch, profile in self.eras:
            if time >= switch:
                current = profile
            else:
                break
        return current

    def next_switch_after(self, time: float) -> Optional[float]:
        """The next era boundary strictly after ``time`` (None if last)."""
        for switch, _profile in self.eras:
            if switch > time:
                return switch
        return None

    @classmethod
    def paper_timeline(cls, stabilize_day: float = 50.0) -> "FailureSchedule":
        """The Grid3 arc: §6.1's rough October/November shake-out, then
        the §7 stable regime (default switch ~mid-December, day 50 of
        the Table 1 window)."""
        return cls([
            (0.0, FailureProfile.early()),
            (stabilize_day * DAY, FailureProfile.calm()),
        ])
