"""Failure injection: the Grid3 failure classes as reproducible
stochastic processes."""

from .injector import FailureInjector
from .models import FailureProfile, FailureSchedule

__all__ = ["FailureInjector", "FailureProfile", "FailureSchedule"]
