"""Stochastic failure injection against live sites.

Each enabled failure class gets one process per site, drawing
exponential interarrival times from the site's named RNG stream so runs
are reproducible and adding a site never perturbs another site's
failure schedule.

Rates may be a single :class:`FailureProfile` or a time-varying
:class:`FailureSchedule` (the paper's shake-out-then-stable arc):
every draw consults the profile in force *now*; a class disabled in the
current era sleeps until the next era boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..errors import ServiceFailureError
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.units import DAY, HOUR
from .models import FailureProfile, FailureSchedule

#: Sleep used when a class is disabled and no further era switch exists.
_FOREVER = 3650 * DAY


class FailureInjector:
    """Drives a FailureProfile / FailureSchedule against a set of sites."""

    def __init__(
        self,
        engine: Engine,
        sites: Iterable,
        rng: RngRegistry,
        profile: Optional[Union[FailureProfile, FailureSchedule]] = None,
    ) -> None:
        self.engine = engine
        self.sites = list(sites)
        self.rng = rng
        if profile is None:
            profile = FailureProfile()
        if isinstance(profile, FailureProfile):
            self.schedule = FailureSchedule([(0.0, profile)])
        else:
            self.schedule = profile
        #: Event counters by class, for the failure-analysis reports.
        self.injected: Dict[str, int] = {
            "service": 0, "pool": 0, "network": 0, "node": 0, "rollover": 0,
        }
        self.jobs_killed = 0
        self._start()

    # -- era plumbing -----------------------------------------------------
    def _profile(self) -> FailureProfile:
        return self.schedule.at(self.engine.now)

    def _any_era(self, attr: str) -> bool:
        """Whether any era enables the given rate attribute."""
        return any(
            getattr(profile, attr, None) for _t, profile in self.schedule.eras
        )

    def _rollover_sites(self) -> Dict[str, bool]:
        out: Dict[str, bool] = {}
        for _t, profile in self.schedule.eras:
            for name in profile.nightly_rollover:
                out[name] = True
        return out

    def _disabled_sleep(self) -> float:
        """How long to sleep when the current era disables a class."""
        next_switch = self.schedule.next_switch_after(self.engine.now)
        if next_switch is None:
            return _FOREVER
        return max(1.0, next_switch - self.engine.now)

    def _draw(self, stream: str, interval: Optional[float]) -> float:
        if not interval:
            return self._disabled_sleep()
        return self.rng.exponential(stream, interval)

    def _start(self) -> None:
        rollover_sites = self._rollover_sites()
        for site in self.sites:
            if self._any_era("service_failure_interval"):
                self.engine.process(
                    self._service_crash_loop(site), name=f"svc-fail-{site.name}"
                )
            if self._any_era("pool_failure_interval"):
                self.engine.process(
                    self._pool_loop(site), name=f"pool-fail-{site.name}"
                )
            if self._any_era("network_interruption_interval"):
                self.engine.process(
                    self._network_loop(site), name=f"net-fail-{site.name}"
                )
            if self._any_era("node_mtbf"):
                self.engine.process(
                    self._node_loop(site), name=f"node-fail-{site.name}"
                )
            if rollover_sites.get(site.name):
                self.engine.process(
                    self._rollover_loop(site), name=f"rollover-{site.name}"
                )

    # -- failure classes ------------------------------------------------------
    def _service_crash_loop(self, site):
        """A site service dies and stays down until repaired.

        GridFTP / gatekeeper outages fail only the work that touches
        them while down (stage-ins error, submissions bounce) — the
        substrate produces those failures naturally.  A *batch-system*
        crash is the §6.2 class that kills every running job at the
        site at once ("all jobs submitted to a site would die").
        """
        while True:
            p = self._profile()
            wait = self._draw(
                f"fail.service.{site.name}", p.service_failure_interval
            )
            yield self.engine.timeout(wait)
            p = self._profile()
            if not p.service_failure_interval or not site.online:
                continue
            victim_role = self.rng.choice(
                f"fail.service.pick.{site.name}",
                ["gridftp", "gatekeeper", "batch"],
                weights=[1.0, 1.0, 2 * p.batch_crash_weight],
            )
            self.injected["service"] += 1
            if victim_role == "batch":
                lrm = site.services.get("lrm")
                if lrm is not None:
                    self.jobs_killed += lrm.interrupt_all(
                        ServiceFailureError(f"{site.name}: batch system crashed")
                    )
                # The batch system restarts with ops help; the
                # gatekeeper keeps bouncing submissions meanwhile.
                gatekeeper = site.services.get("gatekeeper")
                if gatekeeper is not None:
                    gatekeeper.fail("injected batch system crash")
                    yield self.engine.timeout(p.service_repair_time)
                    gatekeeper.restore(note="batch system restarted")
                continue
            service = site.services.get(victim_role)
            if service is None or not service.available:
                continue
            service.fail(f"injected {victim_role} crash")
            yield self.engine.timeout(p.service_repair_time)
            service.restore(note="injector repair")

    def _pool_loop(self, site):
        """A dCache disk pool dies and gets repaired.

        Only fires at sites whose storage is a pooled manager (has
        ``fail_pool``); flat-SE sites draw from their stream but skip,
        so enabling a Tier1 pool store never perturbs another site's
        failure schedule.
        """
        while True:
            p = self._profile()
            wait = self._draw(f"fail.pool.{site.name}", p.pool_failure_interval)
            yield self.engine.timeout(wait)
            p = self._profile()
            manager = getattr(site, "storage", None)
            if not p.pool_failure_interval or not hasattr(manager, "fail_pool"):
                continue
            online = [pool for pool in manager.pools if pool.online]
            if not online:
                continue
            pool = self.rng.choice(f"fail.pool.pick.{site.name}", online)
            self.injected["pool"] += 1
            manager.fail_pool(pool, cause="injected pool failure")
            yield self.engine.timeout(p.pool_repair_time)
            manager.restore_pool(pool)

    def _network_loop(self, site):
        """Access links drop, killing in-flight transfers (§6.1)."""
        while True:
            p = self._profile()
            wait = self._draw(
                f"fail.network.{site.name}", p.network_interruption_interval
            )
            yield self.engine.timeout(wait)
            p = self._profile()
            if not p.network_interruption_interval:
                continue
            network = site.network
            self.injected["network"] += 1
            network.interrupt_link(site.uplink.name, kill_flows=True)
            network.interrupt_link(site.downlink.name, kill_flows=True)
            yield self.engine.timeout(p.network_outage_duration)
            network.restore_link(site.uplink.name)
            network.restore_link(site.downlink.name)

    def _node_loop(self, site):
        """Single worker nodes die and get repaired (§7: sites 'replaced
        disks and/or nodes without perturbation to overall system
        operation' — individual jobs still die).

        The site's failure rate is node_count / node_mtbf, so a given
        job's mortality does not depend on how far the catalog was
        scaled down.
        """
        while True:
            p = self._profile()
            n_nodes = max(1, len(site.cluster.nodes))
            interval = p.node_mtbf / n_nodes if p.node_mtbf else None
            wait = self._draw(f"fail.node.{site.name}", interval)
            yield self.engine.timeout(wait)
            p = self._profile()
            if not p.node_mtbf:
                continue
            online = [n for n in site.cluster.nodes if n.online]
            if not online:
                continue
            node = self.rng.choice(f"fail.node.pick.{site.name}", online)
            self.jobs_killed += len(
                site.cluster.fail_node(node, cause=f"{node.node_id} hardware failure")
            )
            self.injected["node"] += 1
            yield self.engine.timeout(p.node_repair_time)
            site.cluster.restore_node(node)

    def _rollover_loop(self, site):
        """The ACDC nightly worker rollover (§6.1): at the configured
        hour every day, a fraction of nodes reboot, killing their jobs."""
        hour = self._profile().rollover_hour * HOUR
        # First occurrence: the next time the clock hits rollover_hour.
        now = self.engine.now
        first = (now // DAY) * DAY + hour
        if first <= now:
            first += DAY
        yield self.engine.timeout(first - now)
        while True:
            fraction = self._profile().nightly_rollover.get(site.name, 0.0)
            if fraction > 0:
                evicted = site.cluster.rollover(fraction, cause="nightly rollover")
                self.jobs_killed += len(evicted)
                self.injected["rollover"] += 1
            yield self.engine.timeout(DAY)
