"""The Site Status Catalog (§5.2).

"The Site Status Catalog periodically tests all sites and stores some
critical information centrally.  A web interface provides a list of all
Grid3 sites, their location on a map, their status, and other important
information."

Each probe runs the §5.1 verification checks (services up, configuration
sane, disk not full) and records PASS/FAIL history per site, from which
the catalog derives availability statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..services import service_is_up
from ..sim.engine import Engine
from ..sim.units import HOUR


@dataclass(frozen=True)
class ProbeResult:
    """One verification pass against one site."""

    time: float
    site: str
    ok: bool
    problems: Tuple[str, ...] = ()


def probe_site(now: float, site) -> ProbeResult:
    """The verification test battery for one site."""
    problems: List[str] = []
    if not site.online:
        problems.append(f"site status is {site.status}")
    # Uniform liveness checks: every role goes through the same
    # health-snapshot probe, rather than a mix of hard attribute reads
    # and permissive getattr defaults.
    for role in ("gatekeeper", "gridftp", "gris"):
        service = site.services.get(role)
        if service is None or not service_is_up(service):
            problems.append(f"{role} unreachable")
    if site.services.get("misconfigured"):
        problems.append("configuration check failed")
    if site.storage.free <= 0:
        problems.append("storage element full")
    return ProbeResult(now, site.name, ok=not problems, problems=tuple(problems))


class SiteStatusCatalog:
    """Periodic prober + status page."""

    def __init__(
        self,
        engine: Engine,
        sites: Iterable,
        probe_interval: float = 1 * HOUR,
    ) -> None:
        self.engine = engine
        self.sites = list(sites)
        self.probe_interval = probe_interval
        self._history: Dict[str, List[ProbeResult]] = {s.name: [] for s in self.sites}
        self.process = engine.process(self._run(), name="site-status-catalog")

    def probe_all(self) -> List[ProbeResult]:
        """One verification sweep over every site."""
        results = []
        for site in self.sites:
            result = probe_site(self.engine.now, site)
            self._history[site.name].append(result)
            results.append(result)
        return results

    def _run(self):
        while True:
            yield self.engine.timeout(self.probe_interval)
            self.probe_all()

    # -- the status page ------------------------------------------------------
    def current_status(self, site_name: str) -> Optional[ProbeResult]:
        """The most recent probe for a site (None before first probe)."""
        history = self._history.get(site_name, [])
        return history[-1] if history else None

    def status_page(self) -> List[Tuple[str, str, Tuple[str, ...]]]:
        """(site, "PASS"/"FAIL"/"UNKNOWN", problems) rows, sorted."""
        rows = []
        for site in sorted(self._history):
            latest = self.current_status(site)
            if latest is None:
                rows.append((site, "UNKNOWN", ()))
            else:
                rows.append((site, "PASS" if latest.ok else "FAIL", latest.problems))
        return rows

    def availability(self, site_name: str) -> float:
        """Fraction of probes that passed (0 with no history)."""
        history = self._history.get(site_name, [])
        if not history:
            return 0.0
        return sum(r.ok for r in history) / len(history)

    def passing_sites(self) -> List[str]:
        """Sites whose latest probe passed."""
        return [
            name for name in sorted(self._history)
            if (latest := self.current_status(name)) is not None and latest.ok
        ]
