"""The monitoring framework skeleton of Figure 1.

"Producers provide monitored information, consumers use this
information, and intermediaries have both roles, sometimes providing
aggregation or filtering functions."  Concrete tools (Ganglia, MonALISA,
ACDC, the Site Status Catalog) are built from these pieces:

* a :class:`MetricSample` is one observation;
* a :class:`MetricStore` is the queryable sample sink;
* :class:`PeriodicProducer` is the common "sample every N seconds"
  process shape.

The deliberate redundancy the paper defends ("permitting crosschecks on
the data collected", §5.2) shows up as several producers observing the
same underlying state through different paths.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..sim.engine import Engine


@dataclass(frozen=True)
class MetricSample:
    """One observation: (time, metric name, tags, value)."""

    time: float
    name: str
    value: float
    #: Sorted (key, value) pairs — hashable, e.g. (("site","BNL"),).
    tags: Tuple[Tuple[str, str], ...] = ()

    def tag(self, key: str) -> Optional[str]:
        """Look up one tag value."""
        for k, v in self.tags:
            if k == key:
                return v
        return None


def make_tags(**kwargs: str) -> Tuple[Tuple[str, str], ...]:
    """Build a canonical (sorted) tag tuple."""
    return tuple(sorted((k, str(v)) for k, v in kwargs.items()))


class _Series:
    """Columnar storage for one metric name.

    Samples live in the ``samples`` list; the live window is
    ``[start:]`` (ring eviction advances ``start``, and the dead prefix
    is compacted away once it dominates).  ``abs0 + i`` is the
    *absolute* position of ``samples[i]`` — a monotone id that survives
    compaction, used by the index.

    The index (a ``times`` column for bisection plus ``postings``, a
    per-tag inverted index) is **lazy**: most series are append-heavy
    and either never queried or only probed with ``latest`` (which the
    legacy reverse scan already serves in O(1)-ish), so appends stay as
    cheap as the old deque push until the first windowed/tagged query
    materializes the index; from then on it is maintained
    incrementally.

    ``postings`` maps each (key, value) tag pair to ``[offset, plist]``
    where ``plist`` holds the absolute positions of samples carrying
    that pair, in insertion order, and ``plist[offset:]`` are the live
    ones.  Eviction is strictly FIFO per series, so it is FIFO per tag
    pair too — retiring a posting is an O(1) offset bump.

    ``in_order`` tracks whether times are nondecreasing (true for every
    simulation producer); if a caller ever appends out of order, the
    series flags itself and queries fall back to the exact legacy
    linear scan.
    """

    __slots__ = (
        "samples", "times", "start", "abs0", "maxlen", "in_order",
        "indexed", "postings", "last_time", "rev",
    )

    #: Compact the dead prefix when it exceeds this many slots *and*
    #: outnumbers the live ones (amortized O(1) per append).
    _COMPACT_MIN = 512

    def __init__(self, maxlen: Optional[int]) -> None:
        self.samples: List[MetricSample] = []
        self.times: List[float] = []
        self.start = 0
        self.abs0 = 0
        self.maxlen = maxlen
        self.in_order = True
        self.indexed = False
        self.postings: Dict[Tuple[str, str], list] = {}
        self.last_time = -float("inf")
        #: Bumped on every live-window mutation; lets callers cache
        #: derived columns (see MetricStore.series) without staleness.
        self.rev = 0

    def __len__(self) -> int:
        return len(self.samples) - self.start

    def append(self, sample: MetricSample) -> int:
        """Add one sample; returns the net change in live count (0/1)."""
        self.rev += 1
        samples = self.samples
        time = sample.time
        if time < self.last_time:
            self.in_order = False
        else:
            self.last_time = time
        samples.append(sample)
        if self.indexed:
            self.times.append(time)
            pos = self.abs0 + len(samples) - 1
            for pair in sample.tags:
                entry = self.postings.get(pair)
                if entry is None:
                    self.postings[pair] = [0, [pos]]
                else:
                    entry[1].append(pos)
        delta = 1
        if self.maxlen is not None and len(samples) - self.start > self.maxlen:
            self._evict_front()
            delta = 0
        start = self.start
        if start > self._COMPACT_MIN and start * 2 > len(samples):
            del samples[:start]
            if self.indexed:
                del self.times[:start]
            self.abs0 += start
            self.start = 0
        return delta

    def build_index(self) -> None:
        """Materialize the time column and tag postings for the live
        window (one O(live) pass; appends maintain it afterwards)."""
        start = self.start
        abs0 = self.abs0
        times: List[float] = [0.0] * start  # dead prefix: placeholders
        postings: Dict[Tuple[str, str], list] = {}
        for i in range(start, len(self.samples)):
            sample = self.samples[i]
            times.append(sample.time)
            pos = abs0 + i
            for pair in sample.tags:
                entry = postings.get(pair)
                if entry is None:
                    postings[pair] = [0, [pos]]
                else:
                    entry[1].append(pos)
        self.times = times
        self.postings = postings
        self.indexed = True

    def _evict_front(self) -> None:
        evicted = self.samples[self.start]
        self.start += 1
        if not self.indexed:
            return
        for pair in evicted.tags:
            entry = self.postings[pair]
            offset, plist = entry
            # FIFO eviction: the retiring posting is exactly plist[offset].
            offset += 1
            if offset > self._COMPACT_MIN and offset * 2 > len(plist):
                del plist[:offset]
                offset = 0
            entry[0] = offset

    def live(self) -> List[MetricSample]:
        """The retained samples, oldest first (insertion order)."""
        return self.samples[self.start:]

    def shortest_postings(
        self, pairs: Tuple[Tuple[str, str], ...]
    ) -> Optional[Tuple[int, list]]:
        """The smallest live postings list among ``pairs`` (None if any
        pair has never been seen — no sample can match)."""
        best = None
        best_len = -1
        for pair in pairs:
            entry = self.postings.get(pair)
            if entry is None:
                return None
            n = len(entry[1]) - entry[0]
            if best is None or n < best_len:
                best = entry
                best_len = n
        return best  # type: ignore[return-value]


def _matches(sample: MetricSample, pairs: Tuple[Tuple[str, str], ...]) -> bool:
    return all(sample.tag(k) == v for k, v in pairs)


class MetricStore:
    """An in-memory, queryable sample sink (per-metric series).

    ``max_samples`` bounds each metric's retained history (ring
    semantics) — site-local stores in long runs must not grow without
    bound.

    Samples arrive in nondecreasing sim-time order, so ``query`` is a
    bisect over the time column plus a per-tag inverted-index probe
    (O(log n + k) instead of a full scan), ``latest`` walks the tag
    postings backwards, and ``__len__`` is a maintained counter.  A
    series that ever sees an out-of-order append drops back to the
    legacy linear scan, so behavior is identical either way.
    """

    def __init__(self, max_samples: Optional[int] = None) -> None:
        self._samples: Dict[str, _Series] = {}
        self.max_samples = max_samples
        self._count = 0
        #: name -> (series rev, times, values) column cache.
        self._col_cache: Dict[str, Tuple[int, np.ndarray, np.ndarray]] = {}

    def append(self, sample: MetricSample) -> None:
        """Record one sample."""
        series = self._samples.get(sample.name)
        if series is None:
            series = _Series(self.max_samples)
            self._samples[sample.name] = series
        self._count += series.append(sample)

    def extend(self, samples: Iterable[MetricSample]) -> None:
        for sample in samples:
            self.append(sample)

    def names(self) -> List[str]:
        """All metric names seen."""
        return sorted(self._samples)

    def query(
        self,
        name: str,
        since: float = -float("inf"),
        until: float = float("inf"),
        **tag_filter: str,
    ) -> List[MetricSample]:
        """Samples of ``name`` in [since, until] matching every tag."""
        series = self._samples.get(name)
        if series is None:
            return []
        pairs = make_tags(**tag_filter) if tag_filter else ()
        if not series.in_order:
            return [
                s
                for s in series.live()
                if since <= s.time <= until and (not pairs or _matches(s, pairs))
            ]
        if not series.indexed:
            series.build_index()
        samples = series.samples
        times = series.times
        lo = bisect_left(times, since, series.start)
        hi = bisect_right(times, until, lo)
        if not pairs:
            return samples[lo:hi]
        entry = series.shortest_postings(pairs)
        if entry is None:
            return []
        offset, plist = entry
        abs0 = series.abs0
        plo = bisect_left(plist, abs0 + lo, offset)
        phi = bisect_left(plist, abs0 + hi, plo)
        out = []
        for pos in plist[plo:phi]:
            sample = samples[pos - abs0]
            if _matches(sample, pairs):
                out.append(sample)
        return out

    def latest(self, name: str, **tag_filter: str) -> Optional[MetricSample]:
        """The newest matching sample, or None (reverse walk, early exit)."""
        series = self._samples.get(name)
        if series is None:
            return None
        if not tag_filter:
            return series.samples[-1] if len(series) else None
        pairs = make_tags(**tag_filter)
        if not series.in_order or not series.indexed:
            # The reverse scan exits on the newest match, typically
            # within a few steps — not worth forcing an index build.
            samples = series.samples
            for i in range(len(samples) - 1, series.start - 1, -1):
                if _matches(samples[i], pairs):
                    return samples[i]
            return None
        entry = series.shortest_postings(pairs)
        if entry is None:
            return None
        offset, plist = entry
        abs0 = series.abs0
        samples = series.samples
        for i in range(len(plist) - 1, offset - 1, -1):
            sample = samples[plist[i] - abs0]
            if _matches(sample, pairs):
                return sample
        return None

    def series(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar (times, values) float64 arrays for ``name``.

        The cheap bulk accessor for :mod:`repro.analysis` aggregations —
        no per-sample Python objects cross the boundary.  The arrays are
        cached per series and invalidated by the series' revision
        counter, so repeated aggregation passes over a quiescent store
        (the common end-of-run report shape) build the columns once.
        Treat the returned arrays as read-only — they are shared.
        """
        ser = self._samples.get(name)
        if ser is None or not len(ser):
            return np.empty(0, dtype=float), np.empty(0, dtype=float)
        cached = self._col_cache.get(name)
        if cached is not None and cached[0] == ser.rev:
            return cached[1], cached[2]
        start = ser.start
        n = len(ser.samples) - start
        live = ser.samples[start:]
        times = np.fromiter((s.time for s in live), dtype=float, count=n)
        values = np.fromiter((s.value for s in live), dtype=float, count=n)
        self._col_cache[name] = (ser.rev, times, values)
        return times, values

    def series_window(
        self,
        name: str,
        since: float = -float("inf"),
        until: float = float("inf"),
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar (times, values) restricted to ``[since, until]``.

        Vectorized: a ``searchsorted`` slice of the cached columns when
        the series is time-ordered (every simulation producer is), a
        boolean mask otherwise — never a per-sample Python loop.
        """
        times, values = self.series(name)
        if not len(times):
            return times, values
        ser = self._samples.get(name)
        if ser is not None and not ser.in_order:
            mask = (times >= since) & (times <= until)
            return times[mask], values[mask]
        lo = int(np.searchsorted(times, since, side="left"))
        hi = int(np.searchsorted(times, until, side="right"))
        return times[lo:hi], values[lo:hi]

    def window_stats(
        self,
        name: str,
        since: float = -float("inf"),
        until: float = float("inf"),
    ) -> Dict[str, float]:
        """Vectorized reductions over one time window.

        Returns ``{"count", "sum", "mean", "min", "max"}`` (NaNs for
        the empty window, except count/sum) in one pass over the cached
        columns — the building block for windowed dashboards that used
        to re-query per statistic.
        """
        _times, values = self.series_window(name, since, until)
        if not len(values):
            return {"count": 0.0, "sum": 0.0,
                    "mean": float("nan"), "min": float("nan"),
                    "max": float("nan")}
        return {
            "count": float(len(values)),
            "sum": float(values.sum()),
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
        }

    def __len__(self) -> int:
        return self._count


class PeriodicProducer:
    """A process that calls ``collect()`` every ``interval`` seconds.

    ``collect`` returns an iterable of samples which are delivered to
    every attached sink.  Collection exceptions mark the producer
    degraded but do not kill the loop (a monitoring component must not
    take the grid down with it).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        interval: float,
        collect: Callable[[], Iterable[MetricSample]],
        sinks: Optional[List[MetricStore]] = None,
        enabled: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.name = name
        self.interval = interval
        self.collect = collect
        self.sinks: List[MetricStore] = sinks or []
        self.enabled = enabled
        self.collections = 0
        self.errors = 0
        self.process = engine.process(self._run(), name=f"producer-{name}")

    def _run(self):
        while True:
            yield self.engine.timeout(self.interval)
            if not self.enabled:
                continue
            try:
                samples = list(self.collect())
            except Exception:  # noqa: BLE001 - monitoring must survive
                self.errors += 1
                continue
            self.collections += 1
            for sink in self.sinks:
                sink.extend(samples)
