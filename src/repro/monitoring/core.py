"""The monitoring framework skeleton of Figure 1.

"Producers provide monitored information, consumers use this
information, and intermediaries have both roles, sometimes providing
aggregation or filtering functions."  Concrete tools (Ganglia, MonALISA,
ACDC, the Site Status Catalog) are built from these pieces:

* a :class:`MetricSample` is one observation;
* a :class:`MetricStore` is the queryable sample sink;
* :class:`PeriodicProducer` is the common "sample every N seconds"
  process shape.

The deliberate redundancy the paper defends ("permitting crosschecks on
the data collected", §5.2) shows up as several producers observing the
same underlying state through different paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..sim.engine import Engine


@dataclass(frozen=True)
class MetricSample:
    """One observation: (time, metric name, tags, value)."""

    time: float
    name: str
    value: float
    #: Sorted (key, value) pairs — hashable, e.g. (("site","BNL"),).
    tags: Tuple[Tuple[str, str], ...] = ()

    def tag(self, key: str) -> Optional[str]:
        """Look up one tag value."""
        for k, v in self.tags:
            if k == key:
                return v
        return None


def make_tags(**kwargs: str) -> Tuple[Tuple[str, str], ...]:
    """Build a canonical (sorted) tag tuple."""
    return tuple(sorted((k, str(v)) for k, v in kwargs.items()))


class MetricStore:
    """An in-memory, queryable sample sink (per-metric series).

    ``max_samples`` bounds each metric's retained history (ring
    semantics) — site-local stores in long runs must not grow without
    bound.
    """

    def __init__(self, max_samples: Optional[int] = None) -> None:
        self._samples: Dict[str, "deque"] = {}
        self.max_samples = max_samples

    def append(self, sample: MetricSample) -> None:
        """Record one sample."""
        series = self._samples.get(sample.name)
        if series is None:
            from collections import deque
            series = deque(maxlen=self.max_samples)
            self._samples[sample.name] = series
        series.append(sample)

    def extend(self, samples: Iterable[MetricSample]) -> None:
        for sample in samples:
            self.append(sample)

    def names(self) -> List[str]:
        """All metric names seen."""
        return sorted(self._samples)

    def query(
        self,
        name: str,
        since: float = -float("inf"),
        until: float = float("inf"),
        **tag_filter: str,
    ) -> List[MetricSample]:
        """Samples of ``name`` in [since, until] matching every tag."""
        out = []
        for sample in self._samples.get(name, ()):
            if not since <= sample.time <= until:
                continue
            if all(sample.tag(k) == str(v) for k, v in tag_filter.items()):
                out.append(sample)
        return out

    def latest(self, name: str, **tag_filter: str) -> Optional[MetricSample]:
        """The newest matching sample, or None (reverse scan, early exit)."""
        for sample in reversed(self._samples.get(name, ())):
            if all(sample.tag(k) == str(v) for k, v in tag_filter.items()):
                return sample
        return None

    def __len__(self) -> int:
        return sum(len(v) for v in self._samples.values())


class PeriodicProducer:
    """A process that calls ``collect()`` every ``interval`` seconds.

    ``collect`` returns an iterable of samples which are delivered to
    every attached sink.  Collection exceptions mark the producer
    degraded but do not kill the loop (a monitoring component must not
    take the grid down with it).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        interval: float,
        collect: Callable[[], Iterable[MetricSample]],
        sinks: Optional[List[MetricStore]] = None,
        enabled: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.name = name
        self.interval = interval
        self.collect = collect
        self.sinks: List[MetricStore] = sinks or []
        self.enabled = enabled
        self.collections = 0
        self.errors = 0
        self.process = engine.process(self._run(), name=f"producer-{name}")

    def _run(self):
        while True:
            yield self.engine.timeout(self.interval)
            if not self.enabled:
                continue
            try:
                samples = list(self.collect())
            except Exception:  # noqa: BLE001 - monitoring must survive
                self.errors += 1
                continue
            self.collections += 1
            for sink in self.sinks:
                sink.extend(samples)
