"""The monitoring framework skeleton of Figure 1.

"Producers provide monitored information, consumers use this
information, and intermediaries have both roles, sometimes providing
aggregation or filtering functions."  Concrete tools (Ganglia, MonALISA,
ACDC, the Site Status Catalog) are built from these pieces:

* a :class:`MetricSample` is one observation;
* a :class:`MetricStore` is the queryable sample sink;
* :class:`PeriodicProducer` is the common "sample every N seconds"
  process shape.

The deliberate redundancy the paper defends ("permitting crosschecks on
the data collected", §5.2) shows up as several producers observing the
same underlying state through different paths.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..sim.engine import Engine


@dataclass(frozen=True, slots=True)
class MetricSample:
    """One observation: (time, metric name, tags, value).

    Slotted: long runs retain millions of samples, and dropping the
    per-instance ``__dict__`` roughly halves their footprint while
    speeding construction on the producer hot path.
    """

    time: float
    name: str
    value: float
    #: Sorted (key, value) pairs — hashable, e.g. (("site","BNL"),).
    tags: Tuple[Tuple[str, str], ...] = ()

    def tag(self, key: str) -> Optional[str]:
        """Look up one tag value."""
        for k, v in self.tags:
            if k == key:
                return v
        return None


def make_tags(**kwargs: str) -> Tuple[Tuple[str, str], ...]:
    """Build a canonical (sorted) tag tuple."""
    return tuple(sorted((k, str(v)) for k, v in kwargs.items()))


class _Series:
    """Columnar storage for one metric name.

    Samples live in the ``samples`` list; the live window is
    ``[start:]`` (ring eviction advances ``start``, and the dead prefix
    is compacted away once it dominates).  ``abs0 + i`` is the
    *absolute* position of ``samples[i]`` — a monotone id that survives
    compaction, used by the index.

    The index (a ``times`` column for bisection plus ``postings``, a
    per-tag inverted index) is **lazy**: most series are append-heavy
    and either never queried or only probed with ``latest`` (which the
    legacy reverse scan already serves in O(1)-ish), so appends stay as
    cheap as the old deque push until the first windowed/tagged query
    materializes the index; from then on it is maintained
    incrementally.

    ``postings`` maps each (key, value) tag pair to ``[offset, plist]``
    where ``plist`` holds the absolute positions of samples carrying
    that pair, in insertion order, and ``plist[offset:]`` are the live
    ones.  Eviction is strictly FIFO per series, so it is FIFO per tag
    pair too — retiring a posting is an O(1) offset bump.

    ``in_order`` tracks whether times are nondecreasing (true for every
    simulation producer); if a caller ever appends out of order, the
    series flags itself and queries fall back to the exact legacy
    linear scan.
    """

    __slots__ = (
        "samples", "times", "start", "abs0", "maxlen", "in_order",
        "indexed", "postings", "last_time", "rev",
    )

    #: Compact the dead prefix when it exceeds this many slots *and*
    #: outnumbers the live ones (amortized O(1) per append).
    _COMPACT_MIN = 512

    def __init__(self, maxlen: Optional[int]) -> None:
        self.samples: List[MetricSample] = []
        self.times: List[float] = []
        self.start = 0
        self.abs0 = 0
        self.maxlen = maxlen
        self.in_order = True
        self.indexed = False
        self.postings: Dict[Tuple[str, str], list] = {}
        self.last_time = -float("inf")
        #: Bumped on every live-window mutation; lets callers cache
        #: derived columns (see MetricStore.series) without staleness.
        self.rev = 0

    def __len__(self) -> int:
        return len(self.samples) - self.start

    def append(self, sample: MetricSample) -> int:
        """Add one sample; returns the net change in live count (0/1).

        The dominant shape — an in-order append to an unindexed,
        unbounded (or not-yet-full) series — takes the early-return fast
        path: one comparison, one list push, no index or eviction work.
        """
        self.rev += 1
        samples = self.samples
        time = sample.time
        if time < self.last_time:
            self.in_order = False
        else:
            self.last_time = time
        samples.append(sample)
        if not self.indexed:
            if self.maxlen is None or len(samples) - self.start <= self.maxlen:
                return 1
        else:
            self.times.append(time)
            pos = self.abs0 + len(samples) - 1
            postings = self.postings
            for pair in sample.tags:
                entry = postings.get(pair)
                if entry is None:
                    postings[pair] = [0, [pos]]
                else:
                    entry[1].append(pos)
            if self.maxlen is None or len(samples) - self.start <= self.maxlen:
                return 1
        self._evict_front()
        start = self.start
        if start > self._COMPACT_MIN and start * 2 > len(samples):
            del samples[:start]
            if self.indexed:
                del self.times[:start]
            self.abs0 += start
            self.start = 0
        return 0

    def build_index(self) -> None:
        """Materialize the time column and tag postings for the live
        window (one O(live) pass; appends maintain it afterwards)."""
        start = self.start
        abs0 = self.abs0
        times: List[float] = [0.0] * start  # dead prefix: placeholders
        postings: Dict[Tuple[str, str], list] = {}
        for i in range(start, len(self.samples)):
            sample = self.samples[i]
            times.append(sample.time)
            pos = abs0 + i
            for pair in sample.tags:
                entry = postings.get(pair)
                if entry is None:
                    postings[pair] = [0, [pos]]
                else:
                    entry[1].append(pos)
        self.times = times
        self.postings = postings
        self.indexed = True

    def _evict_front(self) -> None:
        evicted = self.samples[self.start]
        self.start += 1
        if not self.indexed:
            return
        for pair in evicted.tags:
            entry = self.postings[pair]
            offset, plist = entry
            # FIFO eviction: the retiring posting is exactly plist[offset].
            offset += 1
            if offset > self._COMPACT_MIN and offset * 2 > len(plist):
                del plist[:offset]
                offset = 0
            entry[0] = offset

    def evict_older_than(
        self, cutoff: float, folded: Dict[float, list], window: float
    ) -> int:
        """Evict the live prefix with ``time < cutoff``, folding each
        evicted sample into per-window streaming aggregates.

        ``folded`` maps window-start -> ``[count, sum, min, max]`` and
        is mutated in place.  Returns the evicted count.  Eviction is
        strictly FIFO (the same order ring eviction uses), so the index
        stays consistent via the ordinary ``_evict_front`` path.
        """
        samples = self.samples
        evicted = 0
        while self.start < len(samples):
            sample = samples[self.start]
            time = sample.time
            if time >= cutoff:
                break
            wstart = (time // window) * window
            value = sample.value
            entry = folded.get(wstart)
            if entry is None:
                folded[wstart] = [1, value, value, value]
            else:
                entry[0] += 1
                entry[1] += value
                if value < entry[2]:
                    entry[2] = value
                if value > entry[3]:
                    entry[3] = value
            self._evict_front()
            evicted += 1
        if evicted:
            self.rev += 1
            start = self.start
            if start > self._COMPACT_MIN and start * 2 > len(samples):
                del samples[:start]
                if self.indexed:
                    del self.times[:start]
                self.abs0 += start
                self.start = 0
        return evicted

    def live(self) -> List[MetricSample]:
        """The retained samples, oldest first (insertion order)."""
        return self.samples[self.start:]

    def shortest_postings(
        self, pairs: Tuple[Tuple[str, str], ...]
    ) -> Optional[Tuple[int, list]]:
        """The smallest live postings list among ``pairs`` (None if any
        pair has never been seen — no sample can match)."""
        best = None
        best_len = -1
        for pair in pairs:
            entry = self.postings.get(pair)
            if entry is None:
                return None
            n = len(entry[1]) - entry[0]
            if best is None or n < best_len:
                best = entry
                best_len = n
        return best  # type: ignore[return-value]


def _matches(sample: MetricSample, pairs: Tuple[Tuple[str, str], ...]) -> bool:
    return all(sample.tag(k) == v for k, v in pairs)


class MetricStore:
    """An in-memory, queryable sample sink (per-metric series).

    ``max_samples`` bounds each metric's retained history (ring
    semantics) — site-local stores in long runs must not grow without
    bound.

    Samples arrive in nondecreasing sim-time order, so ``query`` is a
    bisect over the time column plus a per-tag inverted-index probe
    (O(log n + k) instead of a full scan), ``latest`` walks the tag
    postings backwards, and ``__len__`` is a maintained counter.  A
    series that ever sees an out-of-order append drops back to the
    legacy linear scan, so behavior is identical either way.
    """

    #: Default eviction-window width (sim-seconds) for governed stores.
    DEFAULT_WINDOW = 3600.0

    def __init__(
        self,
        max_samples: Optional[int] = None,
        governor: Optional["MemoryGovernor"] = None,
        window: float = DEFAULT_WINDOW,
    ) -> None:
        self._samples: Dict[str, _Series] = {}
        self.max_samples = max_samples
        self._count = 0
        #: name -> (series rev, times, values) column cache.
        self._col_cache: Dict[str, Tuple[int, np.ndarray, np.ndarray]] = {}
        #: Width of the eviction windows (and their folded aggregates).
        self.window = window
        #: name -> {window_start: [count, sum, min, max]} — streaming
        #: aggregates of samples retired by windowed eviction, so
        #: ops/troubleshooting reports still render after the raw
        #: samples are gone.
        self._evicted: Dict[str, Dict[float, list]] = {}
        #: The shared budget keeper, when this store is governed.
        self.governor: Optional["MemoryGovernor"] = None
        if governor is not None:
            governor.register(self)

    def append(self, sample: MetricSample) -> None:
        """Record one sample."""
        governor = self.governor
        if governor is not None:
            governor.note_appends(1)
        series = self._samples.get(sample.name)
        if series is None:
            series = _Series(self.max_samples)
            self._samples[sample.name] = series
        self._count += series.append(sample)

    def extend(self, samples: Iterable[MetricSample]) -> None:
        """Record a batch (the :class:`PeriodicProducer` delivery path).

        Consecutive same-name samples reuse the series lookup, and the
        governor is consulted once per batch — *before* it lands, so it
        can clear headroom and the budget holds even through a large
        delivery.
        """
        governor = self.governor
        if governor is not None:
            if not isinstance(samples, (list, tuple)):
                samples = list(samples)
            if samples:
                governor.note_appends(len(samples))
        get = self._samples.get
        last_name: Optional[str] = None
        series: Optional[_Series] = None
        for sample in samples:
            name = sample.name
            if name is not last_name or series is None:
                series = get(name)
                if series is None:
                    series = _Series(self.max_samples)
                    self._samples[name] = series
                last_name = name
            self._count += series.append(sample)

    def names(self) -> List[str]:
        """All metric names seen."""
        return sorted(self._samples)

    def query(
        self,
        name: str,
        since: float = -float("inf"),
        until: float = float("inf"),
        **tag_filter: str,
    ) -> List[MetricSample]:
        """Samples of ``name`` in [since, until] matching every tag."""
        series = self._samples.get(name)
        if series is None:
            return []
        pairs = make_tags(**tag_filter) if tag_filter else ()
        if not series.in_order:
            return [
                s
                for s in series.live()
                if since <= s.time <= until and (not pairs or _matches(s, pairs))
            ]
        if not series.indexed:
            series.build_index()
        samples = series.samples
        times = series.times
        lo = bisect_left(times, since, series.start)
        hi = bisect_right(times, until, lo)
        if not pairs:
            return samples[lo:hi]
        entry = series.shortest_postings(pairs)
        if entry is None:
            return []
        offset, plist = entry
        abs0 = series.abs0
        plo = bisect_left(plist, abs0 + lo, offset)
        phi = bisect_left(plist, abs0 + hi, plo)
        out = []
        for pos in plist[plo:phi]:
            sample = samples[pos - abs0]
            if _matches(sample, pairs):
                out.append(sample)
        return out

    def latest(self, name: str, **tag_filter: str) -> Optional[MetricSample]:
        """The newest matching sample, or None (reverse walk, early exit)."""
        series = self._samples.get(name)
        if series is None:
            return None
        if not tag_filter:
            return series.samples[-1] if len(series) else None
        pairs = make_tags(**tag_filter)
        if not series.in_order or not series.indexed:
            # The reverse scan exits on the newest match, typically
            # within a few steps — not worth forcing an index build.
            samples = series.samples
            for i in range(len(samples) - 1, series.start - 1, -1):
                if _matches(samples[i], pairs):
                    return samples[i]
            return None
        entry = series.shortest_postings(pairs)
        if entry is None:
            return None
        offset, plist = entry
        abs0 = series.abs0
        samples = series.samples
        for i in range(len(plist) - 1, offset - 1, -1):
            sample = samples[plist[i] - abs0]
            if _matches(sample, pairs):
                return sample
        return None

    def latest_per_series(
        self, name: str
    ) -> Dict[Tuple[Tuple[str, str], ...], MetricSample]:
        """The newest sample for each distinct tag set under ``name``.

        The Prometheus-exposition accessor: one gauge line per
        (name, label set).  A single forward pass over the live window
        — later samples overwrite earlier ones per tag set — so it
        costs O(live) regardless of how many tag combinations exist,
        where per-combination :meth:`latest` probes would multiply.
        """
        series = self._samples.get(name)
        if series is None:
            return {}
        out: Dict[Tuple[Tuple[str, str], ...], MetricSample] = {}
        for sample in series.live():
            out[sample.tags] = sample
        return out

    def series(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar (times, values) float64 arrays for ``name``.

        The cheap bulk accessor for :mod:`repro.analysis` aggregations —
        no per-sample Python objects cross the boundary.  The arrays are
        cached per series and invalidated by the series' revision
        counter, so repeated aggregation passes over a quiescent store
        (the common end-of-run report shape) build the columns once.
        Treat the returned arrays as read-only — they are shared.
        """
        ser = self._samples.get(name)
        if ser is None or not len(ser):
            return np.empty(0, dtype=float), np.empty(0, dtype=float)
        cached = self._col_cache.get(name)
        if cached is not None and cached[0] == ser.rev:
            return cached[1], cached[2]
        start = ser.start
        n = len(ser.samples) - start
        live = ser.samples[start:]
        times = np.fromiter((s.time for s in live), dtype=float, count=n)
        values = np.fromiter((s.value for s in live), dtype=float, count=n)
        self._col_cache[name] = (ser.rev, times, values)
        return times, values

    def series_window(
        self,
        name: str,
        since: float = -float("inf"),
        until: float = float("inf"),
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar (times, values) restricted to ``[since, until]``.

        Vectorized: a ``searchsorted`` slice of the cached columns when
        the series is time-ordered (every simulation producer is), a
        boolean mask otherwise — never a per-sample Python loop.
        """
        times, values = self.series(name)
        if not len(times):
            return times, values
        ser = self._samples.get(name)
        if ser is not None and not ser.in_order:
            mask = (times >= since) & (times <= until)
            return times[mask], values[mask]
        lo = int(np.searchsorted(times, since, side="left"))
        hi = int(np.searchsorted(times, until, side="right"))
        return times[lo:hi], values[lo:hi]

    def window_stats(
        self,
        name: str,
        since: float = -float("inf"),
        until: float = float("inf"),
    ) -> Dict[str, float]:
        """Vectorized reductions over one time window.

        Returns ``{"count", "sum", "mean", "min", "max"}`` (NaNs for
        the empty window, except count/sum) in one pass over the cached
        columns — the building block for windowed dashboards that used
        to re-query per statistic.

        On a governed store the folded aggregates of evicted windows
        are merged in, so reports over long horizons stay correct after
        raw samples are gone.  Evicted contributions have window
        granularity: a folded window counts whenever it intersects
        ``[since, until]``.
        """
        _times, values = self.series_window(name, since, until)
        n = len(values)
        if n:
            count = float(n)
            total = float(values.sum())
            vmin = float(values.min())
            vmax = float(values.max())
        else:
            count = total = 0.0
            vmin = vmax = float("nan")
        folded = self._evicted.get(name)
        if folded:
            window = self.window
            for wstart, (fcount, fsum, fmin, fmax) in folded.items():
                if wstart > until or wstart + window < since:
                    continue
                count += fcount
                total += fsum
                vmin = fmin if vmin != vmin else min(vmin, fmin)
                vmax = fmax if vmax != vmax else max(vmax, fmax)
        if not count:
            return {"count": 0.0, "sum": 0.0,
                    "mean": float("nan"), "min": float("nan"),
                    "max": float("nan")}
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": vmin,
            "max": vmax,
        }

    # -- windowed eviction (governed stores) ------------------------------
    def evict_oldest_window(self) -> int:
        """Retire the oldest whole eviction window across every series,
        folding the retired samples into streaming aggregates.

        The newest window is never evicted (``latest``/dashboard reads
        must keep working), so a store whose entire history fits one
        window reports 0 — the governor treats that as "cannot shrink".
        Returns the number of samples evicted.
        """
        oldest = float("inf")
        newest = -float("inf")
        for series in self._samples.values():
            if len(series):
                first = series.samples[series.start].time
                if first < oldest:
                    oldest = first
                last = series.last_time
                if last > newest:
                    newest = last
        if oldest == float("inf"):
            return 0
        window = self.window
        cutoff = (oldest // window) * window + window
        newest_start = (newest // window) * window
        if cutoff > newest_start:
            cutoff = newest_start
        if cutoff <= oldest:
            return 0
        evicted = 0
        for name, series in self._samples.items():
            if not len(series):
                continue
            folded = self._evicted.get(name)
            if folded is None:
                folded = self._evicted[name] = {}
            evicted += series.evict_older_than(cutoff, folded, window)
        self._count -= evicted
        return evicted

    def evicted_windows(self, name: str) -> List[Tuple[float, Dict[str, float]]]:
        """Folded aggregates of evicted windows for ``name``: sorted
        ``(window_start, {"count","sum","mean","min","max"})`` rows."""
        folded = self._evicted.get(name)
        if not folded:
            return []
        return [
            (wstart, {
                "count": float(cnt), "sum": float(vsum),
                "mean": vsum / cnt, "min": float(vmin), "max": float(vmax),
            })
            for wstart, (cnt, vsum, vmin, vmax) in sorted(folded.items())
        ]

    @property
    def evicted_sample_count(self) -> int:
        """Lifetime count of samples retired by windowed eviction."""
        return sum(
            int(entry[0])
            for folded in self._evicted.values()
            for entry in folded.values()
        )

    def __len__(self) -> int:
        return self._count


#: Per-sample retained-memory heuristic in bytes: one slotted
#: MetricSample (~64 B) plus its share of the tag tuples, list slots,
#: and index postings.  Deliberately conservative (high) so the
#: governor errs toward evicting early rather than blowing the budget.
SAMPLE_COST_BYTES = 160


class MemoryGovernor:
    """A global memory budget shared across many :class:`MetricStore`\\ s.

    At synthetic-fabric scale the monitoring estate is hundreds of
    per-site stores plus several central ones; individually bounded
    rings cannot cap the *aggregate*.  The governor accounts for every
    registered store's live samples against one byte budget (via the
    :data:`SAMPLE_COST_BYTES` heuristic) and, when the total crosses
    it, retires the oldest whole time-window from the largest store —
    repeatedly, largest-first — folding the evicted samples into each
    store's streaming per-window aggregates so windowed reports keep
    rendering.

    Enforcement is batched (every ``check_every`` appends across all
    registered stores) but fires immediately — with headroom reserved
    for the incoming batch — whenever the running estimate crosses the
    budget line, so the budget holds unless a single batch alone
    exceeds it or every store is already down to its un-evictable
    newest window.
    """

    def __init__(
        self,
        budget_mb: float,
        sample_cost: int = SAMPLE_COST_BYTES,
        check_every: int = 256,
    ) -> None:
        if budget_mb <= 0:
            raise ValueError(f"budget_mb must be positive, got {budget_mb!r}")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.budget_bytes = int(budget_mb * 1024 * 1024)
        self.sample_cost = sample_cost
        self.check_every = check_every
        self._stores: List[MetricStore] = []
        self._pending = 0
        #: Running estimate of live bytes, advanced per append batch and
        #: re-anchored to the exact count on every enforcement pass —
        #: lets the trigger fire *at* the budget line instead of waiting
        #: out a full ``check_every`` batch while over it.
        self._approx_bytes = 0
        #: High-water mark of estimated live bytes (for the bench gate).
        self.peak_bytes = 0
        #: Lifetime samples retired under budget pressure.
        self.evicted_samples = 0
        #: Enforcement passes that could not get back under budget
        #: (every store was down to its newest window).
        self.exhausted_passes = 0

    def register(self, store: MetricStore) -> MetricStore:
        """Put ``store`` under this governor's budget (idempotent)."""
        if store.governor is not self:
            store.governor = self
            self._stores.append(store)
        return store

    @property
    def stores(self) -> List[MetricStore]:
        return list(self._stores)

    def current_bytes(self) -> int:
        """Estimated live bytes across every governed store."""
        return sum(len(store) for store in self._stores) * self.sample_cost

    def note_appends(self, count: int) -> None:
        """Called by governed stores *before* a batch of ``count``
        samples lands.  Triggers an enforcement pass every
        ``check_every`` samples, or immediately when the estimated
        total crosses the budget line — with headroom reserved so the
        incoming batch fits under budget."""
        self._pending += count
        self._approx_bytes += count * self.sample_cost
        if self._pending >= self.check_every or self._approx_bytes > self.budget_bytes:
            self._pending = 0
            self.enforce(headroom=count * self.sample_cost)

    def enforce(self, headroom: int = 0) -> int:
        """Evict (largest store, oldest window) until live bytes fit
        under ``budget - headroom``.  Returns the samples evicted."""
        used = self.current_bytes()
        if used > self.peak_bytes:
            self.peak_bytes = used
        target = self.budget_bytes - headroom
        evicted_total = 0
        while used > target:
            victim = None
            victim_len = 0
            for store in self._stores:
                n = len(store)
                if n > victim_len:
                    victim = store
                    victim_len = n
            if victim is None:
                break
            evicted = victim.evict_oldest_window()
            if not evicted:
                # The largest store cannot shrink (single-window
                # history).  Try the others once; if nothing moves,
                # record the exhaustion and stop rather than spin.
                for store in sorted(self._stores, key=len, reverse=True):
                    if store is not victim:
                        evicted = store.evict_oldest_window()
                        if evicted:
                            break
                if not evicted:
                    self.exhausted_passes += 1
                    break
            evicted_total += evicted
            used -= evicted * self.sample_cost
        self.evicted_samples += evicted_total
        self._approx_bytes = used + headroom
        return evicted_total

    def report(self) -> Dict[str, float]:
        """Budget accounting snapshot (bytes, peak, evictions)."""
        current = self.current_bytes()
        if current > self.peak_bytes:
            self.peak_bytes = current
        return {
            "budget_bytes": float(self.budget_bytes),
            "current_bytes": float(current),
            "peak_bytes": float(self.peak_bytes),
            "stores": float(len(self._stores)),
            "evicted_samples": float(self.evicted_samples),
            "exhausted_passes": float(self.exhausted_passes),
        }


class PeriodicProducer:
    """A process that calls ``collect()`` every ``interval`` seconds.

    ``collect`` returns an iterable of samples which are delivered to
    every attached sink.  Collection exceptions mark the producer
    degraded but do not kill the loop (a monitoring component must not
    take the grid down with it).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        interval: float,
        collect: Callable[[], Iterable[MetricSample]],
        sinks: Optional[List[MetricStore]] = None,
        enabled: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.name = name
        self.interval = interval
        self.collect = collect
        self.sinks: List[MetricStore] = sinks or []
        self.enabled = enabled
        self.collections = 0
        self.errors = 0
        self.process = engine.process(self._run(), name=f"producer-{name}")

    def _run(self):
        while True:
            yield self.engine.timeout(self.interval)
            if not self.enabled:
                continue
            try:
                samples = list(self.collect())
            except Exception:  # noqa: BLE001 - monitoring must survive
                self.errors += 1
                continue
            self.collections += 1
            for sink in self.sinks:
                sink.extend(samples)
