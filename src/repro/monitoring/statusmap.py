"""The Site Status Catalog's map page (§5.2).

"A web interfaces provides a list of all Grid3 sites, their location on
a map, their status, and other important information."

:data:`SITE_LOCATIONS` carries approximate coordinates for the 27
catalog sites (public institutional locations); :func:`render_status_map`
draws the continental-US view as ASCII with per-site status glyphs —
the terminal stand-in for the catalog's web map.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Approximate (latitude, longitude) per catalog site.
SITE_LOCATIONS: Dict[str, Tuple[float, float]] = {
    "BNL_ATLAS": (40.87, -72.87),
    "FNAL_CMS": (41.83, -88.26),
    "CalTech_PG": (34.14, -118.13),
    "CalTech_Grid3": (34.14, -118.12),
    "UFL_Grid3": (29.65, -82.34),
    "IU_Grid3": (39.77, -86.16),
    "UCSD_PG": (32.88, -117.23),
    "UC_Grid3": (41.79, -87.60),
    "Vanderbilt_BTeV": (36.14, -86.80),
    "ANL_HEP": (41.71, -87.98),
    "ANL_MCS": (41.71, -87.99),
    "BU_ATLAS": (42.35, -71.10),
    "UFL_HPC": (29.64, -82.35),
    "Hampton_HU": (37.02, -76.33),
    "Harvard_ATLAS": (42.37, -71.12),
    "IU_ATLAS": (39.17, -86.52),
    "JHU_SDSS": (39.33, -76.62),
    "KNU_Grid3": (35.89, 128.61),     # Kyungpook, Korea (off-map east)
    "LBNL_PDSF": (37.88, -122.25),
    "UB_ACDC": (43.00, -78.79),
    "UC_ATLAS": (41.79, -87.61),
    "UM_ATLAS": (42.28, -83.74),
    "UNM_HPC": (35.08, -106.62),
    "OU_HEP": (35.21, -97.44),
    "UTA_DPCC": (32.73, -97.11),
    "UWMadison_CS": (43.07, -89.40),
    "UWM_LIGO": (43.08, -87.88),
}

#: Status glyphs on the map.
GLYPHS = {"PASS": "o", "FAIL": "X", "UNKNOWN": "?"}

#: Continental-US viewport (lat, lon) bounds.
_LAT_RANGE = (24.0, 50.0)
_LON_RANGE = (-125.0, -66.0)


def project(
    lat: float,
    lon: float,
    width: int,
    height: int,
) -> Optional[Tuple[int, int]]:
    """Map (lat, lon) to (row, col), or None when outside the viewport."""
    lat_lo, lat_hi = _LAT_RANGE
    lon_lo, lon_hi = _LON_RANGE
    if not (lat_lo <= lat <= lat_hi and lon_lo <= lon <= lon_hi):
        return None
    col = int((lon - lon_lo) / (lon_hi - lon_lo) * (width - 1))
    row = int((lat_hi - lat) / (lat_hi - lat_lo) * (height - 1))
    return row, col


def render_status_map(
    statuses: Dict[str, str],
    width: int = 72,
    height: int = 20,
) -> str:
    """The §5.2 map page: one glyph per site on a US grid, plus a legend
    of off-map sites and a key.

    ``statuses`` maps site name -> "PASS"|"FAIL"|"UNKNOWN" (e.g. from
    :meth:`SiteStatusCatalog.status_page`).
    """
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    off_map: List[str] = []
    collisions: Dict[Tuple[int, int], int] = {}
    for site, status in sorted(statuses.items()):
        location = SITE_LOCATIONS.get(site)
        glyph = GLYPHS.get(status, "?")
        if location is None:
            off_map.append(f"{site} (no coordinates): {status}")
            continue
        pos = project(*location, width=width, height=height)
        if pos is None:
            off_map.append(f"{site} (off-map): {status}")
            continue
        row, col = pos
        count = collisions.get(pos, 0)
        if count and grid[row][col] != glyph:
            # A FAIL at a shared pixel must stay visible.
            if glyph == "X":
                grid[row][col] = "X"
        else:
            grid[row][col] = glyph
        collisions[pos] = count + 1
    border = "+" + "-" * width + "+"
    lines = [border]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append("key: o=PASS  X=FAIL  ?=UNKNOWN")
    lines.extend(off_map)
    return "\n".join(lines)


def status_map_for_catalog(status_page: Iterable[Tuple[str, str, tuple]]) -> str:
    """Convenience: render straight from
    :meth:`SiteStatusCatalog.status_page` output rows."""
    return render_status_map({site: status for site, status, _p in status_page})
