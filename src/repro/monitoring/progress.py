"""Live run progress: the in-sim side of the observability pipeline.

Grid2003 was operated from live dashboards — MonALISA plots, the Site
Status Catalog, Ganglia web pages — not from post-mortem log digs
(§5.2).  This module gives a running simulation the same property: a
:class:`ProgressMeter` walks ``deploy -> apps -> sim -> done`` emitting
:class:`ProgressEvent` snapshots (sim-time watermark, kernel event
count, job tallies, open tickets) through a caller-supplied ``emit``
callback.

Design constraints, in order:

* **Zero cost when off.**  ``Grid3.run_full()`` without a progress
  callback takes exactly the pre-observability code path; a same-seed
  run is byte-identical.
* **No simulation perturbation when on.**  The meter schedules no
  events and draws no RNG — it slices ``engine.run(until=...)`` into
  ``slices`` sim-time windows, which dispatches the identical event
  sequence (the kernel claims buckets in the same order either way),
  and reads counters between slices.
* **Deterministic sequence numbers.**  ``seq`` increments once per
  emitted event, so every transport downstream (pipe, SSE stream,
  delta poll) can agree on position.

The transport side (bounded coalescing pipe to the service process,
SSE/poll exposure) lives in :mod:`repro.service.progress`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Iterable, List

from ..core.results import ReportRecord

#: Event kinds, lifecycle order.  "phase" marks a lifecycle boundary
#: (deploy finished, applications started), "tick" is a periodic
#: in-flight snapshot, "end" is the final snapshot of a finished run.
KINDS = ("phase", "tick", "end")

#: Default number of in-flight snapshots per run.
DEFAULT_SLICES = 32


@dataclass(frozen=True)
class ProgressEvent(ReportRecord):
    """One progress snapshot of an in-flight (or just-finished) run.

    ``seq`` is a deterministic, strictly increasing emission index;
    ``frac`` is the sim-time watermark as a fraction of the configured
    window; ``events`` is the kernel's lifetime dispatched-event count;
    the job tallies are summed over every VO's Condor-G; ``wall_s`` is
    wall-clock seconds since the meter was created (informational only
    — it never feeds back into the simulation).
    """

    seq: int
    kind: str
    phase: str
    sim_time: float
    frac: float
    events: int
    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    tickets_open: int
    wall_s: float


def slice_times(duration: float, slices: int) -> List[float]:
    """The ``engine.run(until=...)`` horizons for ``slices`` windows.

    The last horizon is exactly ``duration`` (no float-accumulation
    drift), so a sliced run ends on the same clock as an unsliced one.
    """
    if slices < 1:
        raise ValueError(f"slices must be >= 1, got {slices}")
    out = [duration * i / slices for i in range(1, slices)]
    out.append(duration)
    return out


class ProgressMeter:
    """Snapshot builder bound to one :class:`~repro.Grid3` instance.

    The grid drives it (see ``Grid3.run_full``); everything here is a
    pure read of existing counters — no events, no RNG, no state left
    behind on the grid.
    """

    def __init__(
        self,
        grid,
        emit: Callable[[ProgressEvent], None],
        slices: int = DEFAULT_SLICES,
    ) -> None:
        if slices < 1:
            raise ValueError(f"slices must be >= 1, got {slices}")
        self.grid = grid
        self._emit = emit
        self.slices = slices
        self._seq = 0
        self._wall0 = _time.monotonic()

    def snapshot(self, kind: str, phase: str) -> ProgressEvent:
        """Build the next event (increments ``seq``)."""
        grid = self.grid
        submitted = completed = failed = 0
        for condorg in grid.condorg.values():
            submitted += condorg.submitted
            completed += condorg.completed
            failed += condorg.failed
        duration = grid.duration or 1.0
        event = ProgressEvent(
            seq=self._seq,
            kind=kind,
            phase=phase,
            sim_time=grid.engine.now,
            frac=min(1.0, grid.engine.now / duration),
            events=grid.engine.dispatched,
            jobs_submitted=submitted,
            jobs_completed=completed,
            jobs_failed=failed,
            tickets_open=len(grid.igoc.tickets.open_tickets()),
            wall_s=round(_time.monotonic() - self._wall0, 6),
        )
        self._seq += 1
        return event

    def emit(self, kind: str, phase: str) -> ProgressEvent:
        """Build and deliver the next event."""
        event = self.snapshot(kind, phase)
        self._emit(event)
        return event

    def horizons(self) -> Iterable[float]:
        """The sim-time slice boundaries for this grid's window."""
        return slice_times(self.grid.duration, self.slices)


def render_progress_line(event_dict: dict, width: int = 24) -> str:
    """One-line terminal rendering of a progress event (``repro top``).

    Takes the event's plain-dict form (what the SSE stream and the
    delta poll both carry) so the renderer works on wire data directly.
    """
    frac = max(0.0, min(1.0, float(event_dict.get("frac", 0.0))))
    filled = int(round(frac * width))
    bar = "#" * filled + "." * (width - filled)
    sim_days = float(event_dict.get("sim_time", 0.0)) / 86400.0
    return (
        f"[{bar}] {frac:4.0%}  {event_dict.get('phase', '?'):>6}  "
        f"sim {sim_days:6.2f}d  "
        f"events {int(event_dict.get('events', 0)):>10,}  "
        f"jobs {int(event_dict.get('jobs_completed', 0))}"
        f"/{int(event_dict.get('jobs_submitted', 0))}"
        f" ({int(event_dict.get('jobs_failed', 0))} failed)  "
        f"tickets {int(event_dict.get('tickets_open', 0))}"
    )
