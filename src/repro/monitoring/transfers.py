"""The grid-wide data-transfer ledger behind Figure 5.

Fig. 5 plots "data consumed by Grid3 sites, by VO" — nearly 100 TB in 30
days, with the GridFTP demonstrator accounting for most of it.  Job
staging volume is already in the ACDC records; this ledger additionally
captures non-job transfers (the §4.7 Entrada demonstrator's site-matrix
traffic) and gives the analysis layer one uniform query surface for
bytes moved, tagged by VO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.units import DAY


@dataclass(frozen=True)
class TransferEntry:
    """One completed transfer: when, whose, how much, where."""

    time: float
    vo: str
    nbytes: float
    src: str
    dst: str
    #: "stage-in" | "stage-out" | "demo" | other free-form kinds.
    kind: str = "demo"


class TransferLedger:
    """Append-only record of completed transfers with VO attribution."""

    def __init__(self) -> None:
        self._entries: List[TransferEntry] = []

    def record(self, time: float, vo: str, nbytes: float, src: str, dst: str,
               kind: str = "demo") -> None:
        """Log one completed transfer."""
        if nbytes < 0:
            raise ValueError("transfer bytes cannot be negative")
        self._entries.append(TransferEntry(time, vo, nbytes, src, dst, kind))

    def __len__(self) -> int:
        return len(self._entries)

    def entries(
        self,
        vo: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = -float("inf"),
        until: float = float("inf"),
    ) -> List[TransferEntry]:
        """Filtered entry list."""
        return [
            e for e in self._entries
            if (vo is None or e.vo == vo)
            and (kind is None or e.kind == kind)
            and since <= e.time <= until
        ]

    def total_bytes(self, **filters) -> float:
        """Total volume over matching entries."""
        return sum(e.nbytes for e in self.entries(**filters))

    def bytes_by_vo(self, since: float = -float("inf"), until: float = float("inf")) -> Dict[str, float]:
        """VO -> bytes moved in the window (the Fig. 5 breakdown)."""
        out: Dict[str, float] = {}
        for e in self.entries(since=since, until=until):
            out[e.vo] = out.get(e.vo, 0.0) + e.nbytes
        return out

    def daily_series(self, t0: float, t1: float, vo: Optional[str] = None) -> List[float]:
        """Bytes per day over [t0, t1) (the Fig. 5 time axis)."""
        n_days = max(1, int((t1 - t0) // DAY))
        bins = [0.0] * n_days
        for e in self.entries(vo=vo, since=t0, until=t1):
            idx = int((e.time - t0) // DAY)
            if 0 <= idx < n_days:
                bins[idx] += e.nbytes
        return bins

    def peak_daily_bytes(self, t0: float, t1: float) -> float:
        """The best single day (the §7 'data transferred per day' 4 TB)."""
        series = self.daily_series(t0, t1)
        return max(series) if series else 0.0
