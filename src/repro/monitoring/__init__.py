"""The Grid3 monitoring framework (Figure 1): producers, intermediaries,
consumers — Ganglia, MonALISA, ACDC, the Site Status Catalog, MDViewer."""

from .acdc import ACDCDatabase, ACDCJobMonitor, JobRecord
from .core import (
    MemoryGovernor,
    MetricSample,
    MetricStore,
    PeriodicProducer,
    make_tags,
)
from .ganglia import GangliaAgent, GangliaWeb
from .mdviewer import MDViewer
from .monalisa import MonALISAAgent, MonALISARepository
from .progress import ProgressEvent, ProgressMeter, render_progress_line, slice_times
from .prometheus import grid_exposition, render_flat, render_line, render_store
from .rrd import RoundRobinDatabase
from .servicehealth import ServiceHealthAgent
from .sitecatalog import ProbeResult, SiteStatusCatalog, probe_site
from .statusmap import SITE_LOCATIONS, render_status_map, status_map_for_catalog
from .transfers import TransferEntry, TransferLedger

__all__ = [
    "ACDCDatabase",
    "ACDCJobMonitor",
    "GangliaAgent",
    "GangliaWeb",
    "JobRecord",
    "MDViewer",
    "MemoryGovernor",
    "MetricSample",
    "MetricStore",
    "MonALISAAgent",
    "MonALISARepository",
    "PeriodicProducer",
    "ProbeResult",
    "ProgressEvent",
    "ProgressMeter",
    "RoundRobinDatabase",
    "SITE_LOCATIONS",
    "ServiceHealthAgent",
    "render_status_map",
    "status_map_for_catalog",
    "SiteStatusCatalog",
    "TransferEntry",
    "TransferLedger",
    "grid_exposition",
    "make_tags",
    "probe_site",
    "render_flat",
    "render_line",
    "render_progress_line",
    "render_store",
    "slice_times",
]
