"""Service-health monitoring: the ledger and counters, published.

The service substrate (:mod:`repro.services`) keeps per-service
lifecycle state, downtime ledgers, and counters; this module is the
monitoring-side bridge that samples them periodically into a
:class:`~repro.monitoring.core.MetricStore` — the "deliberate
redundancy" of §5.2 applied to service health: probes (Site Status
Catalog) and ledgers (here) observe the same outages through different
paths and can be cross-checked.

Published series, all tagged ``site=<owner site>``, ``role=<role>``:

* ``service.<role>.up`` — 1.0/0.0 liveness at sample time;
* ``service.<role>.availability`` — ledger availability since t=0;
* ``service.<role>.<counter>`` — every counter the service declares.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..services import GridService, grid_services
from ..sim.engine import Engine
from ..sim.units import HOUR
from .core import MetricSample, MetricStore, PeriodicProducer, make_tags


class ServiceHealthAgent:
    """Periodic sampler over every GridService in a grid.

    ``extra_services`` adds off-site services (the RLS index, VOMS
    servers) keyed by the display name used as their ``site`` tag.
    """

    def __init__(
        self,
        engine: Engine,
        sites: Iterable,
        interval: float = 1 * HOUR,
        store: Optional[MetricStore] = None,
        extra_services: Optional[Dict[str, GridService]] = None,
    ) -> None:
        self.engine = engine
        self.sites = list(sites)
        self.extra_services = dict(extra_services or {})
        self.store = store if store is not None else MetricStore()
        self.producer = PeriodicProducer(
            engine, "service-health", interval, self.collect_once, [self.store]
        )

    def _samples_for(
        self, now: float, site_name: str, service: GridService
    ) -> List[MetricSample]:
        tags = make_tags(site=site_name, role=service.role)
        prefix = f"service.{service.role}"
        samples = [
            MetricSample(now, f"{prefix}.up",
                         1.0 if service.available else 0.0, tags),
            MetricSample(now, f"{prefix}.availability",
                         service.availability(), tags),
        ]
        samples.extend(
            MetricSample(now, f"{prefix}.{name}", value, tags)
            for name, value in sorted(service.counters().items())
        )
        return samples

    def collect_once(self) -> List[MetricSample]:
        """One sweep over every service (also the producer's collect)."""
        now = self.engine.now
        samples: List[MetricSample] = []
        for site in self.sites:
            for _role, service in sorted(grid_services(site).items()):
                samples.extend(self._samples_for(now, site.name, service))
        for name, service in sorted(self.extra_services.items()):
            samples.extend(self._samples_for(now, name, service))
        return samples
