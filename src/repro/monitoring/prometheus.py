"""Prometheus text exposition over the monitoring estate.

Grid2003's monitoring worked because every layer fed one aggregate view
at the iGOC (§5.2, Fig. 1).  This module is that unification for the
reproduction: any :class:`~repro.monitoring.MetricStore` — the
service-health ledger, the sched/data/trace stores, the HTTP service's
own scrape history — renders to the `Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (v0.0.4,
hand-rolled; no client library, tier-1 stays hermetic).

Exposition is *latest-per-(name, label set)*: each distinct tag
combination contributes one gauge line carrying its newest sample, so
the output is a snapshot, not a history dump.  Names are sanitised to
the Prometheus grammar (``service.gatekeeper.up`` ->
``service_gatekeeper_up``); label values are escaped per the spec.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from .core import MetricStore

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_FIRST_OK = re.compile(r"^[a-zA-Z_:]")


def sanitize_name(name: str) -> str:
    """Coerce a metric name to the Prometheus grammar.

    Dots and other illegal characters become underscores; a leading
    digit gets an underscore prefix.  Deterministic, so the same store
    always renders the same exposition.
    """
    out = _NAME_OK.sub("_", name)
    if not out or not _FIRST_OK.match(out):
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value (ints without the trailing .0)."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "NaN"
    if number != number:
        return "NaN"
    if number in (float("inf"), -float("inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_line(
    name: str, value: float, tags: Iterable[Tuple[str, str]] = ()
) -> str:
    """One ``name{labels} value`` sample line."""
    labels = ",".join(
        f'{sanitize_name(k)}="{escape_label_value(str(v))}"' for k, v in tags
    )
    body = f"{{{labels}}}" if labels else ""
    return f"{sanitize_name(name)}{body} {format_value(value)}"


def render_store(store: MetricStore, prefix: str = "") -> List[str]:
    """Every metric in ``store`` as exposition lines, latest sample per
    (name, label set), with a ``# TYPE ... gauge`` header per family.

    ``prefix`` namespaces the family (``repro_trace_`` etc.); it is
    applied before sanitisation so callers pass plain dotted names.
    """
    lines: List[str] = []
    for name in store.names():
        per_series = store.latest_per_series(name)
        if not per_series:
            continue
        family = sanitize_name(prefix + name)
        lines.append(f"# TYPE {family} gauge")
        for tags in sorted(per_series):
            sample = per_series[tags]
            lines.append(render_line(prefix + name, sample.value, tags))
    return lines


def render_flat(
    gauges: Dict[str, float],
    prefix: str = "",
    tags: Iterable[Tuple[str, str]] = (),
) -> List[str]:
    """A flat ``{name: value}`` dict as exposition lines (sorted)."""
    lines: List[str] = []
    for name in sorted(gauges):
        family = sanitize_name(prefix + name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(render_line(prefix + name, gauges[name], tags))
    return lines


def grid_stores(grid) -> Dict[str, MetricStore]:
    """Every MetricStore in a grid's monitoring estate, by store name.

    Resolves the heterogeneous ``grid.monitors`` registry: bare
    MetricStores (``data``, ``trace``, ``sched``) pass through; agents
    holding a ``.store`` (service-health, Ganglia web) contribute it.
    """
    out: Dict[str, MetricStore] = {}
    for name, monitor in sorted(getattr(grid, "monitors", {}).items()):
        if isinstance(monitor, MetricStore):
            out[name] = monitor
        else:
            store = getattr(monitor, "store", None)
            if isinstance(store, MetricStore):
                out[name] = store
    return out


def grid_exposition(grid, progress: Optional[dict] = None) -> str:
    """The whole grid as one Prometheus text page.

    Covers the kernel counters, per-VO job tallies, ticket counts, and
    every MetricStore in the estate prefixed ``repro_<store>_``.  The
    optional ``progress`` dict (a ProgressEvent's plain form) adds the
    per-run progress gauges — the worker renders this at end of run so
    the service can serve a finished run's final exposition without
    holding the grid.
    """
    lines: List[str] = []
    lines.extend(render_flat({
        "engine_events_dispatched": float(grid.engine.dispatched),
        "engine_sim_seconds": float(grid.engine.now),
        "sites": float(len(grid.sites)),
        "tickets_total": float(len(grid.igoc.tickets)),
        "tickets_open": float(len(grid.igoc.tickets.open_tickets())),
    }, prefix="repro_"))
    for counter in ("submitted", "completed", "failed"):
        family = f"repro_jobs_{counter}"
        lines.append(f"# TYPE {family} gauge")
        for vo in sorted(grid.condorg):
            lines.append(render_line(
                family, float(getattr(grid.condorg[vo], counter)),
                (("vo", vo),),
            ))
    if progress:
        lines.extend(render_flat({
            f"run_progress_{key}": float(progress[key])
            for key in ("frac", "sim_time", "events", "jobs_submitted",
                        "jobs_completed", "jobs_failed", "tickets_open")
            if key in progress
        }, prefix="repro_"))
    for store_name, store in grid_stores(grid).items():
        lines.extend(render_store(
            store, prefix=f"repro_{sanitize_name(store_name)}_"
        ))
    return "\n".join(lines) + "\n"
