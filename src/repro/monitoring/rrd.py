"""A round-robin time-series database.

§5.2: "The MonALISA central repository collects its information in a
central server at the iGOC, storing it in a round robin-like database."
Fixed-width bins, a fixed retention ring, and a consolidation function —
old data ages out instead of growing without bound, exactly the
trade-off the real repository made.
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Tuple

_CONSOLIDATORS = {
    "avg": lambda values: sum(values) / len(values),
    "max": max,
    "min": min,
    "sum": sum,
    "last": lambda values: values[-1],
}


class RoundRobinDatabase:
    """Fixed-capacity binned time series."""

    def __init__(self, bin_width: float, capacity: int, consolidation: str = "avg") -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if consolidation not in _CONSOLIDATORS:
            raise ValueError(f"unknown consolidation {consolidation!r}")
        self.bin_width = bin_width
        self.capacity = capacity
        self.consolidation = consolidation
        self._fn: Callable = _CONSOLIDATORS[consolidation]
        #: ring entries: (bin_index, [raw values]) — kept sorted by bin.
        self._bins: List[Tuple[int, List[float]]] = []
        self.samples_seen = 0
        self.samples_dropped = 0

    def update(self, time: float, value: float) -> None:
        """Add an observation.  Out-of-retention (too old) samples are
        dropped and counted, never retro-inserted."""
        self.samples_seen += 1
        idx = int(time // self.bin_width)
        if self._bins and idx < self._bins[0][0]:
            self.samples_dropped += 1
            return
        if self._bins:
            last_idx, last_values = self._bins[-1]
            if last_idx == idx:
                last_values.append(value)
                return
            if last_idx < idx:
                self._bins.append((idx, [value]))
            else:
                # Rare out-of-order arrival into an older retained bin.
                for bin_idx, values in reversed(self._bins):
                    if bin_idx == idx:
                        values.append(value)
                        return
                # idx differs from every retained bin here, so tuple
                # comparison never reaches the list element.
                bisect.insort(self._bins, (idx, [value]))
        else:
            self._bins.append((idx, [value]))
        while len(self._bins) > self.capacity:
            self._bins.pop(0)

    def series(self) -> List[Tuple[float, float]]:
        """Retained (bin start time, consolidated value) pairs."""
        return [
            (idx * self.bin_width, self._fn(values))
            for idx, values in self._bins
            if values
        ]

    def value_at(self, time: float) -> Optional[float]:
        """Consolidated value of the bin containing ``time`` (None if
        absent/aged out)."""
        idx = int(time // self.bin_width)
        for bin_idx, values in self._bins:
            if bin_idx == idx and values:
                return self._fn(values)
        return None

    @property
    def span(self) -> float:
        """Seconds of history currently retained."""
        if not self._bins:
            return 0.0
        return (self._bins[-1][0] - self._bins[0][0] + 1) * self.bin_width

    def __len__(self) -> int:
        return len(self._bins)
