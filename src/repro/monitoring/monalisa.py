"""MonALISA: agent-based monitoring with a central repository (§5.2).

"MonALISA ... provides access to monitoring data provided by a variety
of information providers, including agents which monitored the GRAM
logfiles, job queues, and Ganglia metrics ... Custom agents were
developed to collect VO-specific activity at sites such as jobs run,
compute element usage, and I/O.  The MonALISA central repository
collects its information in a central server at the iGOC, storing it in
a round robin-like database."

Per-site :class:`MonALISAAgent` runs three sensors (GRAM log tail, job
queue, VO activity) and ships samples to the central
:class:`MonALISARepository`, which consolidates them into per-(metric,
site[,vo]) round-robin databases.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.engine import Engine
from ..sim.units import HOUR, MINUTE
from .core import MetricSample, PeriodicProducer, make_tags
from .rrd import RoundRobinDatabase


class MonALISARepository:
    """The iGOC central repository: RRD per (metric, tag-set)."""

    def __init__(
        self,
        bin_width: float = 10 * MINUTE,
        capacity: int = 50_000,
        consolidation: str = "avg",
    ) -> None:
        self.bin_width = bin_width
        self.capacity = capacity
        self.consolidation = consolidation
        self._rrds: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], RoundRobinDatabase] = {}

    def ingest(self, samples: List[MetricSample]) -> None:
        """Store samples into their per-series RRDs."""
        for sample in samples:
            key = (sample.name, sample.tags)
            rrd = self._rrds.get(key)
            if rrd is None:
                rrd = RoundRobinDatabase(self.bin_width, self.capacity, self.consolidation)
                self._rrds[key] = rrd
            rrd.update(sample.time, sample.value)

    # Make the repository usable as a PeriodicProducer sink.
    def extend(self, samples) -> None:
        self.ingest(list(samples))

    def series(self, name: str, **tags: str) -> List[Tuple[float, float]]:
        """The consolidated series for an exact (metric, tags) key."""
        key = (name, make_tags(**tags))
        rrd = self._rrds.get(key)
        return rrd.series() if rrd else []

    def series_matching(self, name: str, **tag_filter: str) -> Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]]:
        """All series of ``name`` whose tags include ``tag_filter``."""
        wanted = set(make_tags(**tag_filter))
        out = {}
        for (metric, tags), rrd in self._rrds.items():
            if metric == name and wanted <= set(tags):
                out[tags] = rrd.series()
        return out

    def aggregate_latest(self, name: str, **tag_filter: str) -> float:
        """Sum of the latest bin value across matching series (the
        repository's grid-wide view, e.g. total CPUs in use)."""
        total = 0.0
        for series in self.series_matching(name, **tag_filter).values():
            if series:
                total += series[-1][1]
        return total

    def __len__(self) -> int:
        return len(self._rrds)


class MonALISAAgent:
    """The per-site station agent and its sensors."""

    def __init__(
        self,
        engine: Engine,
        site,
        repository: MonALISARepository,
        vos: List[str],
        interval: float = 10 * MINUTE,
    ) -> None:
        self.engine = engine
        self.site = site
        self.repository = repository
        self.vos = vos
        self._gram_log_cursor = 0
        self.producer = PeriodicProducer(
            engine, f"monalisa-{site.name}", interval, self._collect, [repository]
        )
        site.attach_service("monalisa", self)

    # -- sensors -----------------------------------------------------------
    def _gram_log_sensor(self, now, tags) -> List[MetricSample]:
        """Tail the gatekeeper log: submissions/completions since last
        pass, plus the current load (the §6.4 quantity)."""
        gatekeeper = self.site.services.get("gatekeeper")
        if gatekeeper is None:
            return []
        new_entries, self._gram_log_cursor = gatekeeper.log.since(
            self._gram_log_cursor
        )
        submits = sum(1 for e in new_entries if e[1] == "submit")
        dones = sum(1 for e in new_entries if e[1] == "done")
        fails = sum(1 for e in new_entries if e[1] in ("failed", "overload_reject"))
        return [
            MetricSample(now, "gram.submits", float(submits), tags),
            MetricSample(now, "gram.completions", float(dones), tags),
            MetricSample(now, "gram.failures", float(fails), tags),
            MetricSample(now, "gram.load", gatekeeper.load(), tags),
            MetricSample(now, "gram.managed", float(gatekeeper.managed_count), tags),
        ]

    def _queue_sensor(self, now, tags) -> List[MetricSample]:
        lrm = self.site.services.get("lrm")
        if lrm is None:
            return []
        return [
            MetricSample(now, "queue.idle", float(lrm.queue_length), tags),
            MetricSample(now, "queue.running", float(lrm.running_count), tags),
        ]

    def _vo_activity_sensor(self, now) -> List[MetricSample]:
        """The custom Grid3 agents: per-VO CPUs in use at this site."""
        lrm = self.site.services.get("lrm")
        if lrm is None:
            return []
        counts = {vo: 0 for vo in self.vos}
        for job in lrm.running_jobs():
            if job.vo in counts:
                counts[job.vo] += 1
        return [
            MetricSample(
                now, "vo.cpus_in_use", float(count),
                make_tags(site=self.site.name, vo=vo),
            )
            for vo, count in counts.items()
        ]

    def _collect(self) -> List[MetricSample]:
        now = self.engine.now
        tags = make_tags(site=self.site.name)
        samples = []
        samples.extend(self._gram_log_sensor(now, tags))
        samples.extend(self._queue_sensor(now, tags))
        samples.extend(self._vo_activity_sensor(now))
        # Ganglia pass-through (the "Ganglia metrics" agents).
        ganglia = self.site.services.get("ganglia")
        if ganglia is not None:
            latest = ganglia.local_store.latest("cpu.busy", site=self.site.name)
            if latest is not None:
                samples.append(
                    MetricSample(now, "ganglia.cpu_busy", latest.value, tags)
                )
        return samples
