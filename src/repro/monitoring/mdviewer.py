"""MDViewer: the metrics analysis/display tool (§5.2).

"The Metrics Data Viewer (MDViewer) allows for the analysis and display
of collected metrics information.  It provides an API for manipulating,
comparing and viewing information and a set of predefined plots,
parametric in arbitrary time intervals, sites and VOs, tailored to
Grid2003 needs."

The predefined plots here are precisely the paper's figures:

* :meth:`integrated_cpu_by_vo`      — Figure 2
* :meth:`differential_cpu_series`   — Figure 3
* :meth:`cumulative_cpu_by_site`    — Figure 4
* :meth:`data_consumed_by_vo` / :meth:`cumulative_data_series` — Figure 5
* :meth:`jobs_by_month`             — Figure 6

All job-derived quantities come from the ACDC database (completed
records), transfer volumes from the ledger, and live utilisation from
the MonALISA repository — the §5.2 redundancy lets tests cross-check
them against each other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.calendar import SimCalendar
from ..sim.units import CPU_DAY, DAY
from .acdc import ACDCDatabase, JobRecord
from .monalisa import MonALISARepository
from .transfers import TransferLedger


def _overlap(record: JobRecord, t0: float, t1: float) -> float:
    """Seconds of the record's node occupancy inside [t0, t1]."""
    if record.started_at < 0 or record.finished_at < 0:
        return 0.0
    return max(0.0, min(record.finished_at, t1) - max(record.started_at, t0))


class MDViewer:
    """Predefined Grid2003 plots over the monitoring databases."""

    def __init__(
        self,
        database: ACDCDatabase,
        repository: Optional[MonALISARepository] = None,
        ledger: Optional[TransferLedger] = None,
        calendar: Optional[SimCalendar] = None,
    ) -> None:
        self.database = database
        self.repository = repository
        self.ledger = ledger
        self.calendar = calendar or SimCalendar()

    # -- Figure 2 -----------------------------------------------------------
    def integrated_cpu_by_vo(self, t0: float, t1: float) -> Dict[str, float]:
        """CPU-days consumed per VO inside [t0, t1] (Fig. 2)."""
        out: Dict[str, float] = {}
        for record in self.database.records():
            seconds = _overlap(record, t0, t1)
            if seconds > 0:
                out[record.vo] = out.get(record.vo, 0.0) + seconds / CPU_DAY
        return out

    # -- Figure 3 -----------------------------------------------------------
    def differential_cpu_series(
        self, t0: float, t1: float, bin_width: float = DAY
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-VO time series of time-averaged CPUs in use (Fig. 3)."""
        n_bins = max(1, int(round((t1 - t0) / bin_width)))
        sums: Dict[str, List[float]] = {}
        for record in self.database.records():
            if record.started_at < 0 or record.finished_at < record.started_at:
                continue
            first = max(0, int((record.started_at - t0) // bin_width))
            last = min(n_bins - 1, int((record.finished_at - t0) // bin_width))
            if record.finished_at <= t0 or record.started_at >= t1:
                continue
            per_vo = sums.setdefault(record.vo, [0.0] * n_bins)
            for b in range(first, last + 1):
                b0 = t0 + b * bin_width
                per_vo[b] += _overlap(record, b0, b0 + bin_width)
        return {
            vo: [
                (t0 + b * bin_width, total / bin_width)
                for b, total in enumerate(bins)
            ]
            for vo, bins in sums.items()
        }

    # -- Figure 4 -----------------------------------------------------------
    def cumulative_cpu_by_site(
        self, vo: str, t0: float, t1: float
    ) -> Dict[str, float]:
        """One VO's CPU-days per site over the window (Fig. 4)."""
        out: Dict[str, float] = {}
        for record in self.database.records(vo=vo):
            seconds = _overlap(record, t0, t1)
            if seconds > 0:
                out[record.site] = out.get(record.site, 0.0) + seconds / CPU_DAY
        return out

    # -- Figure 5 -----------------------------------------------------------
    def data_consumed_by_vo(self, t0: float, t1: float) -> Dict[str, float]:
        """Bytes consumed per responsible VO (Fig. 5's breakdown)."""
        if self.ledger is None:
            return {}
        return self.ledger.bytes_by_vo(since=t0, until=t1)

    def cumulative_data_series(
        self, t0: float, t1: float, vo: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """Cumulative bytes over time (Fig. 5's top curve when vo=None)."""
        if self.ledger is None:
            return []
        daily = self.ledger.daily_series(t0, t1, vo=vo)
        out = []
        total = 0.0
        for day_idx, nbytes in enumerate(daily):
            total += nbytes
            out.append((t0 + (day_idx + 1) * DAY, total))
        return out

    # -- Figure 6 -----------------------------------------------------------
    def jobs_by_month(self, t0: float = 0.0, t1: float = float("inf")) -> Dict[str, int]:
        """Completed-job counts per calendar month (Fig. 6)."""
        out: Dict[str, int] = {}
        for record in self.database.records(since=t0, until=t1):
            label = self.calendar.month_label(record.finished_at)
            out[label] = out.get(label, 0) + 1
        return out

    def jobs_by_month_and_vo(self) -> Dict[str, Dict[str, int]]:
        """month -> vo -> job count (Table 1's peak-production columns)."""
        out: Dict[str, Dict[str, int]] = {}
        for record in self.database.records():
            label = self.calendar.month_label(record.finished_at)
            per_vo = out.setdefault(label, {})
            per_vo[record.vo] = per_vo.get(record.vo, 0) + 1
        return out

    # -- §7 metrics helpers --------------------------------------------------
    def peak_concurrent_jobs(self, t0: float, t1: float) -> int:
        """Maximum simultaneously running jobs in the window (§7: target
        1000, achieved 1300)."""
        events: List[Tuple[float, int]] = []
        for record in self.database.records():
            if record.started_at < 0:
                continue
            start = max(record.started_at, t0)
            end = min(record.finished_at, t1)
            if end <= start:
                continue
            events.append((start, 1))
            events.append((end, -1))
        events.sort()
        peak = current = 0
        for _time, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    def utilisation_series(self, total_cpus: int) -> List[Tuple[float, float]]:
        """Fraction of Grid3 CPUs in use over time, from the MonALISA
        repository's VO-activity RRDs (§7's 40–70 % metric)."""
        if self.repository is None or total_cpus <= 0:
            return []
        merged: Dict[float, float] = {}
        for series in self.repository.series_matching("vo.cpus_in_use").values():
            for time, value in series:
                merged[time] = merged.get(time, 0.0) + value
        return [(t, merged[t] / total_cpus) for t in sorted(merged)]
