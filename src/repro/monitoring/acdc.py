"""The ACDC Job Monitor (§5.2) — the source of Table 1.

"The ACDC Job Monitor from the Advanced Computational Data Center at the
University of Buffalo collects information from local job managers using
a typical pull-based model.  Statistics and job metrics are collected
and stored in a web-visible database, available for aggregated queries
and browsing."

:class:`ACDCJobMonitor` polls every site LRM for newly completed jobs and
stores :class:`JobRecord` rows in :class:`ACDCDatabase`.  The paper's
Table 1 ("based on completed production jobs ... source ACDC University
at Buffalo", 291 052 job records) is an aggregate query over exactly
this database — implemented in :mod:`repro.analysis.table1`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.job import Job
from ..sim.engine import Engine
from ..sim.units import HOUR, MINUTE


@dataclass(frozen=True)
class JobRecord:
    """One harvested row of the ACDC job database."""

    job_id: int
    name: str
    vo: str
    user: str
    site: str
    submitted_at: float
    started_at: float
    finished_at: float
    runtime: float          # wall-clock seconds on the node
    queue_time: float
    succeeded: bool
    failure_category: str   # "" | "site" | "application" | "infrastructure"
    failure_type: str       # exception class name, "" on success
    bytes_in: float
    bytes_out: float

    @classmethod
    def from_job(cls, job: Job) -> "JobRecord":
        return cls(
            job_id=job.job_id,
            name=job.spec.name,
            vo=job.vo,
            user=job.spec.user,
            site=job.site_name,
            submitted_at=job.submitted_at,
            started_at=job.started_at,
            finished_at=job.finished_at,
            runtime=job.run_time,
            queue_time=job.queue_time,
            succeeded=job.succeeded,
            failure_category=job.failure_category or "",
            failure_type=type(job.error).__name__ if job.error else "",
            bytes_in=job.bytes_staged_in,
            bytes_out=job.bytes_staged_out,
        )


class ACDCDatabase:
    """The web-visible job-record store with aggregate queries."""

    def __init__(self) -> None:
        self._records: List[JobRecord] = []

    def add(self, record: JobRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def records(
        self,
        vo: Optional[str] = None,
        site: Optional[str] = None,
        user: Optional[str] = None,
        since: float = -float("inf"),
        until: float = float("inf"),
        succeeded: Optional[bool] = None,
    ) -> List[JobRecord]:
        """Filtered record list (completion time within [since, until])."""
        out = []
        for r in self._records:
            if vo is not None and r.vo != vo:
                continue
            if site is not None and r.site != site:
                continue
            if user is not None and r.user != user:
                continue
            if not since <= r.finished_at <= until:
                continue
            if succeeded is not None and r.succeeded != succeeded:
                continue
            out.append(r)
        return out

    def vos(self) -> List[str]:
        """Distinct VOs with at least one record."""
        return sorted({r.vo for r in self._records})

    def sites(self) -> List[str]:
        return sorted({r.site for r in self._records})

    def success_rate(self, **filters) -> float:
        """Fraction of matching jobs that completed perfectly (the §7
        'efficiency of job completion' metric)."""
        matching = self.records(**filters)
        if not matching:
            return 0.0
        return sum(r.succeeded for r in matching) / len(matching)

    def failure_breakdown(self, **filters) -> Dict[str, int]:
        """Failed-job counts by category — reproduces the §6.1 claim that
        ~90 % of failures were site problems."""
        out: Dict[str, int] = {}
        for r in self.records(**filters):
            if not r.succeeded:
                out[r.failure_category] = out.get(r.failure_category, 0) + 1
        return out

    def total_cpu_days(self, **filters) -> float:
        """Sum of runtime over matching records, in CPU-days."""
        return sum(r.runtime for r in self.records(**filters)) / (24 * HOUR)


class ACDCJobMonitor:
    """Pull-model harvester over every site's LRM."""

    def __init__(
        self,
        engine: Engine,
        sites: Iterable,
        database: Optional[ACDCDatabase] = None,
        poll_interval: float = 15 * MINUTE,
    ) -> None:
        self.engine = engine
        self.sites = list(sites)
        self.database = database or ACDCDatabase()
        self.poll_interval = poll_interval
        self._cursors: Dict[str, int] = {s.name: 0 for s in self.sites}
        self.polls = 0
        self.process = engine.process(self._run(), name="acdc-monitor")

    def poll_once(self) -> int:
        """One harvesting pass; returns records pulled."""
        pulled = 0
        for site in self.sites:
            lrm = site.services.get("lrm")
            if lrm is None:
                continue
            cursor = self._cursors.get(site.name, 0)
            fresh = lrm.drain_completed(cursor)
            self._cursors[site.name] = cursor + len(fresh)
            for job in fresh:
                self.database.add(JobRecord.from_job(job))
                pulled += 1
        self.polls += 1
        return pulled

    def _run(self):
        while True:
            yield self.engine.timeout(self.poll_interval)
            self.poll_once()
