"""Ganglia: cluster monitoring (§5.1–5.2).

"Ganglia is used to collect cluster monitoring information such as CPU
and network load and memory and disk usage.  Ganglia-collected
information is available through web pages served at the sites and a
summary [at] a central server at iGOC."

A :class:`GangliaAgent` samples its site's cluster/SE/GridFTP state
periodically into the site-local store; the central :class:`GangliaWeb`
aggregates the latest values across sites (the iGOC summary page).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Engine
from ..sim.units import MINUTE
from .core import MetricSample, MetricStore, PeriodicProducer, make_tags


class GangliaAgent:
    """Per-site gmond: publishes cluster metrics locally and upstream."""

    def __init__(
        self,
        engine: Engine,
        site,
        central: Optional["GangliaWeb"] = None,
        interval: float = 5 * MINUTE,
    ) -> None:
        self.engine = engine
        self.site = site
        self.central = central
        #: The site-local web page's backing store (bounded ring).
        self.local_store = MetricStore(max_samples=2000)
        self._last_gridftp_bytes = 0.0
        sinks = [self.local_store]
        if central is not None:
            sinks.append(central.store)
        self.producer = PeriodicProducer(
            engine, f"ganglia-{site.name}", interval, self._collect, sinks
        )
        site.attach_service("ganglia", self)

    def _collect(self) -> List[MetricSample]:
        now = self.engine.now
        tags = make_tags(site=self.site.name)
        cluster = self.site.cluster
        gridftp = self.site.services.get("gridftp")
        net_bytes = 0.0
        if gridftp is not None:
            total = gridftp.bytes_sent + gridftp.bytes_received
            net_bytes = total - self._last_gridftp_bytes
            self._last_gridftp_bytes = total
        return [
            MetricSample(now, "cpu.total", float(cluster.total_cpus), tags),
            MetricSample(now, "cpu.busy", float(cluster.busy_cpus), tags),
            MetricSample(now, "cpu.load", cluster.utilisation, tags),
            MetricSample(now, "disk.used", self.site.storage.used, tags),
            MetricSample(now, "disk.free", self.site.storage.free, tags),
            MetricSample(now, "net.bytes", net_bytes, tags),
        ]


class GangliaWeb:
    """The central Ganglia summary at the iGOC."""

    def __init__(self) -> None:
        # Bounded: the iGOC summary only ever serves recent values.
        self.store = MetricStore(max_samples=100_000)

    def latest(self, site: str, metric: str) -> Optional[float]:
        """Newest value of ``metric`` for ``site`` (None if never seen)."""
        sample = self.store.latest(metric, site=site)
        return sample.value if sample else None

    def grid_summary(self, metric: str, sites: List[str]) -> float:
        """Sum of the latest per-site values (the hierarchical grid view)."""
        total = 0.0
        for site in sites:
            value = self.latest(site, metric)
            if value is not None:
                total += value
        return total
