"""Dataset bookkeeping: logical files grouped into named, VO-owned sets.

§8 of the paper lists "Storage Services and Data Management" among the
lessons learned: "Additional infrastructure services are needed to
support managed persistent and transient storage."  The first missing
piece is *grouping*: RLS maps individual logical files to replicas, but
every real workload (ATLAS production samples, SDSS coadd fields, the
GridFTP demonstrator's matrix traffic) moves and retires data in
dataset-sized units.  :class:`DatasetCatalog` provides that unit —
named file sets with a VO owner, access counters, and pin state — which
the :class:`~repro.data.agent.StorageAgent` uses to decide what is hot
(replicate it) and what is cold and unpinned (evict it under disk
pressure).

This catalog is management-facing; the DIAL analysis-facing catalog in
:mod:`repro.workflow.dial` (which indexes *produced physics samples*
for interactive analysis) is a different concern and stays separate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class Dataset:
    """A named set of logical files with one owning VO.

    ``accesses``/``last_access`` are bumped by
    :meth:`DatasetCatalog.record_access` whenever a member file is
    staged or served; the StorageAgent reads them for its hot/cold
    ranking.  ``pinned`` datasets are never evicted.
    """

    name: str
    vo: str
    files: Dict[str, float] = field(default_factory=dict)  # lfn -> bytes
    pinned: bool = False
    accesses: int = 0
    last_access: float = 0.0

    @property
    def size(self) -> float:
        """Total logical bytes across member files."""
        return sum(self.files.values())

    def __len__(self) -> int:
        return len(self.files)

    def __contains__(self, lfn: str) -> bool:
        return lfn in self.files

    def __repr__(self) -> str:
        return (
            f"<Dataset {self.name} ({self.vo}) {len(self.files)} files "
            f"{self.size:.2e} B{' pinned' if self.pinned else ''}>"
        )


class DatasetCatalog:
    """Named datasets plus the lfn → dataset reverse index.

    Files belong to at most one dataset (the Grid3 VOs namespaced their
    LFNs, so collisions indicate a workload bug and raise).  Files
    never claimed by any dataset are *orphans* — scratch residue from
    failed jobs, exactly the §6.2 disk-filler — and the eviction policy
    treats them as the first thing to reclaim.
    """

    def __init__(self) -> None:
        self._datasets: Dict[str, Dataset] = {}
        self._by_lfn: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    # -- definition --------------------------------------------------------
    def define(
        self,
        name: str,
        vo: str,
        files: Iterable[Tuple[str, float]] = (),
        pinned: bool = False,
    ) -> Dataset:
        """Create (or extend) a dataset; re-defining with a different VO
        raises."""
        dataset = self._datasets.get(name)
        if dataset is None:
            dataset = Dataset(name=name, vo=vo, pinned=pinned)
            self._datasets[name] = dataset
        elif dataset.vo != vo:
            raise ValueError(
                f"dataset {name!r} is owned by {dataset.vo}, not {vo}"
            )
        for lfn, size in files:
            self.add_file(name, lfn, size)
        return dataset

    def add_file(self, name: str, lfn: str, size: float) -> None:
        """Add one member file (idempotent for same dataset)."""
        if size < 0:
            raise ValueError(f"file {lfn!r} has negative size")
        owner = self._by_lfn.get(lfn)
        if owner is not None and owner != name:
            raise ValueError(f"{lfn!r} already belongs to dataset {owner!r}")
        self._datasets[name].files[lfn] = float(size)
        self._by_lfn[lfn] = name

    def auto_define(self, lfn: str, size: float) -> Optional[Dataset]:
        """Catalogue a file by its path-style LFN namespace.

        The Grid3 workloads all name files ``/vo/group/...`` (e.g.
        ``/atlas/<run>/dst``, ``/sdss/images/strip-003``), so the first
        two components identify the dataset and the first the owning
        VO.  LFNs outside that convention stay orphans (returns None).
        """
        parts = [p for p in lfn.split("/") if p]
        if len(parts) < 2:
            return None
        name = "/".join(parts[:2])
        dataset = self.define(name, vo=parts[0])
        if lfn not in dataset.files:
            self.add_file(name, lfn, size)
        return dataset

    def remove_file(self, lfn: str) -> None:
        """Forget a member file (no-op for unknown LFNs)."""
        name = self._by_lfn.pop(lfn, None)
        if name is not None:
            self._datasets[name].files.pop(lfn, None)

    # -- lookup ------------------------------------------------------------
    def dataset(self, name: str) -> Dataset:
        """The named dataset (KeyError if unknown)."""
        return self._datasets[name]

    def dataset_of(self, lfn: str) -> Optional[Dataset]:
        """The dataset a file belongs to, or None for orphans."""
        name = self._by_lfn.get(lfn)
        return self._datasets[name] if name is not None else None

    def datasets(self, vo: Optional[str] = None) -> List[Dataset]:
        """All datasets (optionally one VO's), sorted by name."""
        return [
            self._datasets[name]
            for name in sorted(self._datasets)
            if vo is None or self._datasets[name].vo == vo
        ]

    # -- pinning ----------------------------------------------------------
    def pin(self, name: str) -> None:
        """Protect a dataset from eviction."""
        self._datasets[name].pinned = True

    def unpin(self, name: str) -> None:
        """Allow eviction again."""
        self._datasets[name].pinned = False

    def is_pinned(self, lfn: str) -> bool:
        """Whether the file's dataset (if any) is pinned."""
        dataset = self.dataset_of(lfn)
        return dataset.pinned if dataset is not None else False

    # -- access accounting -------------------------------------------------
    def record_access(self, lfn: str, time: float) -> None:
        """Bump the owning dataset's heat counters (orphans ignored)."""
        dataset = self.dataset_of(lfn)
        if dataset is not None:
            dataset.accesses += 1
            dataset.last_access = max(dataset.last_access, time)

    def last_access_of(self, lfn: str) -> float:
        """When the file's dataset was last touched (0.0 for orphans —
        coldest possible, so residue evicts first)."""
        dataset = self.dataset_of(lfn)
        return dataset.last_access if dataset is not None else 0.0

    def hot_datasets(self, n: int = 5, vo: Optional[str] = None) -> List[Dataset]:
        """Top-``n`` datasets by access count (ties by name, stable)."""
        ranked = sorted(
            self.datasets(vo=vo), key=lambda d: (-d.accesses, d.name)
        )
        return [d for d in ranked[:max(0, n)] if d.accesses > 0]

    def bytes_by_vo(self) -> Dict[str, float]:
        """VO -> total logical bytes catalogued."""
        out: Dict[str, float] = {}
        for dataset in self._datasets.values():
            out[dataset.vo] = out.get(dataset.vo, 0.0) + dataset.size
        return out

    def __repr__(self) -> str:
        return f"<DatasetCatalog {len(self._datasets)} datasets>"
