"""Disk-pressure control: LRU eviction and hot-dataset replication.

"The most common failure mode was a site problem: a disk would fill up
... and all jobs submitted to a site would die" (§6.2).  Deployed Grid3
answered disk pressure with humans: an iGOC ticket and a site admin
running ``rm``.  :class:`StorageAgent` is that operator automated —
a periodic sweep over every storage element that

* **evicts** above a high watermark: coldest unpinned files go first
  (orphan scratch residue, then least-recently-accessed dataset files),
  down to a low watermark, preferring files that still have another
  replica elsewhere; last-copy files are only reclaimed when the sweep
  cannot otherwise get below the *high* watermark (the operator's
  judgement call, applied mechanically) and are unregistered from RLS
  so no planner routes a job at a deleted copy;
* **replicates** hot datasets: the most-accessed datasets get a second
  replica on the least-loaded live site, moved through the
  :class:`~repro.data.transfer.TransferManager` so the copies respect
  queueing, reservation, and retry like any other transfer;
* **publishes** ``data.*`` metrics (occupancy, evictions, replication
  and transfer-queue gauges) into a monitoring
  :class:`~repro.monitoring.core.MetricStore`, giving the ops layer the
  §8 "managed storage" observability it asked for.

All policy is deterministic (sorted sweeps, tie-breaks on name); the
agent draws no randomness, so enabling it perturbs no RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..monitoring.core import MetricSample, MetricStore, PeriodicProducer, make_tags
from ..sim.engine import Engine
from ..sim.units import HOUR

from .catalog import DatasetCatalog
from .transfer import TransferManager


@dataclass
class SiteDataReport:
    """One site's row in the ``repro data`` table."""

    site: str
    files: int
    capacity: float
    used: float
    occupancy: float
    evictions: int
    evicted_bytes: float
    replicas_received: int


class StorageAgent:
    """Periodic disk-pressure controller over a set of sites.

    Parameters
    ----------
    engine, sites:
        Kernel and name → Site map (each site's ``.storage`` may be a
        flat :class:`~repro.fabric.storage.StorageElement` or a pooled
        :class:`~repro.middleware.dcache.DCachePoolManager`; both expose
        the files()/delete()/capacity surface the sweep needs).
    catalog:
        The :class:`DatasetCatalog` consulted for pinning and heat.
    rls:
        Optional replica index; evictions unregister, and replica
        counting prefers multi-copy files.
    transfers:
        Optional :class:`TransferManager` for hot-dataset replication
        (no manager → eviction-only agent).
    high_watermark / low_watermark:
        Occupancy fractions: a sweep triggers above high and evicts
        down to low.
    replicate_threshold:
        Minimum dataset access count before replication is considered.
    """

    def __init__(
        self,
        engine: Engine,
        sites: Dict[str, object],
        catalog: Optional[DatasetCatalog] = None,
        rls=None,
        transfers: Optional[TransferManager] = None,
        interval: float = 1 * HOUR,
        high_watermark: float = 0.85,
        low_watermark: float = 0.70,
        replicate_hot: bool = True,
        replicate_threshold: int = 3,
        replication_copies: int = 2,
        max_replications_per_sweep: int = 2,
        store: Optional[MetricStore] = None,
    ) -> None:
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError("need 0 < low_watermark <= high_watermark <= 1")
        self.engine = engine
        self.sites = sites
        self.catalog = catalog if catalog is not None else DatasetCatalog()
        self.rls = rls
        self.transfers = transfers
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.replicate_hot = replicate_hot
        self.replicate_threshold = replicate_threshold
        self.replication_copies = replication_copies
        self.max_replications_per_sweep = max_replications_per_sweep
        self.store = store if store is not None else MetricStore()
        #: Lifetime counters (also published as data.* metrics).
        self.sweeps = 0
        self.evictions = 0
        self.evicted_bytes = 0.0
        self.replications_started = 0
        self.last_copy_evictions = 0
        self._per_site_evictions: Dict[str, int] = {}
        self._per_site_evicted_bytes: Dict[str, float] = {}
        self._per_site_replicas: Dict[str, int] = {}
        self.producer = PeriodicProducer(
            engine, "storage-agent", interval, self._collect, [self.store]
        )

    # -- the sweep ---------------------------------------------------------
    def sweep_once(self) -> int:
        """One full pressure pass over every site; returns evictions."""
        self.sweeps += 1
        before = self.evictions
        for name in sorted(self.sites):
            self._relieve_pressure(self.sites[name])
        if self.replicate_hot and self.transfers is not None:
            self._replicate_hot_datasets()
        return self.evictions - before

    def _occupancy(self, storage) -> float:
        capacity = storage.capacity
        return storage.used / capacity if capacity else 0.0

    def _eviction_order(self, site) -> List[Tuple[str, float]]:
        """(lfn, size) eviction candidates, coldest first.

        Sort key: pinned files are excluded outright; then orphans
        before catalogued files, colder (older last access) before
        hotter, name as the deterministic tie-break.
        """
        candidates = []
        for obj in site.storage.files():
            if self.catalog.is_pinned(obj.lfn):
                continue
            candidates.append(obj)
        candidates.sort(
            key=lambda o: (self.catalog.last_access_of(o.lfn), o.lfn)
        )
        return [(o.lfn, o.size) for o in candidates]

    def _evict(self, site, lfn: str, size: float) -> None:
        site.storage.delete(lfn)
        if self.rls is not None:
            self.rls.unregister(site.name, lfn)
        self.evictions += 1
        self.evicted_bytes += size
        self._per_site_evictions[site.name] = (
            self._per_site_evictions.get(site.name, 0) + 1
        )
        self._per_site_evicted_bytes[site.name] = (
            self._per_site_evicted_bytes.get(site.name, 0.0) + size
        )

    def _relieve_pressure(self, site) -> None:
        storage = site.storage
        capacity = storage.capacity
        if capacity <= 0 or self._occupancy(storage) <= self.high_watermark:
            return
        order = self._eviction_order(site)
        # Pass 1: safe deletions — orphans and files with another copy.
        for lfn, size in order:
            if storage.used <= self.low_watermark * capacity:
                return
            holders = self._site_replicas(lfn)
            if holders == [site.name]:
                continue  # last registered copy: not safe yet
            if lfn in storage:
                self._evict(site, lfn, size)
        if storage.used <= self.high_watermark * capacity:
            return
        # Pass 2: still above the *high* watermark — reclaim last copies
        # too (coldest first), unregistering so planners stop seeing them.
        for lfn, size in order:
            if storage.used <= self.low_watermark * capacity:
                return
            if lfn in storage:
                self.last_copy_evictions += 1
                self._evict(site, lfn, size)

    # -- replication -------------------------------------------------------
    def _site_replicas(self, lfn: str) -> List[str]:
        if self.rls is None:
            return []
        try:
            return self.rls.sites_with(lfn)
        except Exception:
            return []

    def _target_site(self, exclude: Iterable[str], size: float):
        """Least-occupied live site with room, deterministically."""
        exclude = set(exclude)
        best = None
        for name in sorted(self.sites):
            if name in exclude:
                continue
            site = self.sites[name]
            if not getattr(site, "online", True):
                continue
            gridftp = site.services.get("gridftp")
            if gridftp is not None and not gridftp.available:
                continue
            storage = site.storage
            if storage.capacity <= 0:
                continue
            headroom_after = (storage.used + size) / storage.capacity
            if headroom_after >= self.low_watermark:
                continue
            if best is None or self._occupancy(storage) < self._occupancy(best.storage):
                best = site
        return best

    def _replicate_hot_datasets(self) -> None:
        started = 0
        for dataset in self.catalog.hot_datasets(n=5):
            if started >= self.max_replications_per_sweep:
                return
            if dataset.accesses < self.replicate_threshold:
                continue
            for lfn in sorted(dataset.files):
                if started >= self.max_replications_per_sweep:
                    return
                holders = self._site_replicas(lfn)
                if not holders or len(holders) >= self.replication_copies:
                    continue
                size = dataset.files[lfn]
                target = self._target_site(holders, size)
                if target is None:
                    continue
                self.transfers.submit(
                    lfn, size, target.name, vo=dataset.vo,
                    kind="replication", register=True,
                )
                self.replications_started += 1
                self._per_site_replicas[target.name] = (
                    self._per_site_replicas.get(target.name, 0) + 1
                )
                started += 1

    # -- monitoring --------------------------------------------------------
    def _collect(self) -> List[MetricSample]:
        """Sweep, then publish the data.* series (the producer's tick)."""
        self.sweep_once()
        now = self.engine.now
        samples: List[MetricSample] = []
        for name in sorted(self.sites):
            site = self.sites[name]
            tags = make_tags(site=name)
            samples.append(MetricSample(
                now, "data.occupancy", self._occupancy(site.storage), tags,
            ))
            samples.append(MetricSample(
                now, "data.evictions",
                float(self._per_site_evictions.get(name, 0)), tags,
            ))
            samples.append(MetricSample(
                now, "data.evicted_bytes",
                self._per_site_evicted_bytes.get(name, 0.0), tags,
            ))
        samples.append(MetricSample(
            now, "data.replications", float(self.replications_started), (),
        ))
        if self.transfers is not None:
            for cname, value in sorted(self.transfers.counters().items()):
                samples.append(MetricSample(
                    now, f"data.transfers.{cname}", value, (),
                ))
        return samples

    def counters(self) -> Dict[str, float]:
        """Lifetime counters for the ops/troubleshooting layer."""
        return {
            "sweeps": float(self.sweeps),
            "evictions": float(self.evictions),
            "evicted_bytes": self.evicted_bytes,
            "last_copy_evictions": float(self.last_copy_evictions),
            "replications_started": float(self.replications_started),
        }

    def report(self) -> List[SiteDataReport]:
        """Per-site occupancy/eviction rows (the ``repro data`` table)."""
        rows = []
        for name in sorted(self.sites):
            storage = self.sites[name].storage
            rows.append(SiteDataReport(
                site=name,
                files=len(storage),
                capacity=storage.capacity,
                used=storage.used,
                occupancy=self._occupancy(storage),
                evictions=self._per_site_evictions.get(name, 0),
                evicted_bytes=self._per_site_evicted_bytes.get(name, 0.0),
                replicas_received=self._per_site_replicas.get(name, 0),
            ))
        return rows
