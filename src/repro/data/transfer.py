"""Managed GridFTP transfers: queueing, retry, and space reservation.

Grid3 fired transfers at sites with no admission control; §6.3 reports
the consequences (gatekeeper/GridFTP overload, half-finished stage-ins
after network blips, disks filled by writes nobody had reserved).  The
cited Stork work made exactly this point: data placement must be a
*scheduled, recoverable* activity, not a fire-and-forget side effect.

:class:`TransferManager` is that scheduler:

* transfers queue **per destination site** with bounded concurrency, so
  a burst toward one Tier1 cannot monopolise every GridFTP connection;
* failures the paper names as transient — a down service, a network
  interruption, a full disk awaiting cleanup — are retried with
  exponential backoff and jitter;
* when the destination runs SRM, space is reserved *before* bytes move
  (the §6.2/§8 lesson), and released on failure;
* retry jitter draws come from dedicated ``data.transfer.*`` RNG
  streams, so enabling the manager never perturbs the seeds of any
  other subsystem (same-seed runs without managed transfers stay
  byte-identical).

A submitted transfer is tracked by a :class:`TransferTicket` whose
``done`` event *succeeds with the ticket* on both success and final
failure — callers inspect ``ticket.ok``/``ticket.error`` instead of
handling exceptions from the event plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import (
    NetworkInterruptionError,
    ReplicaNotFoundError,
    ReservationError,
    ServiceUnavailableError,
    StorageFullError,
    TransferError,
)
from ..middleware import gridftp
from ..sim.engine import Engine, Event
from ..sim.rng import RngRegistry
from ..sim.units import MINUTE
from ..trace import NULL_TRACER

#: Exception classes worth retrying: each maps to a §6 failure the
#: system can recover from (service restored, link back, disk cleaned).
RETRYABLE = (
    NetworkInterruptionError,
    ReservationError,
    ServiceUnavailableError,
    StorageFullError,
    TransferError,
)


@dataclass
class TransferTicket:
    """One managed transfer through its queue → retry → done lifecycle."""

    lfn: str
    size: float
    dst_name: str
    src_name: Optional[str] = None     # None = re-select per attempt
    vo: str = ""
    kind: str = "managed"
    register: bool = False             # register the new replica in RLS
    #: "queued" | "active" | "done" | "failed"
    state: str = "queued"
    attempts: int = 0
    error: Optional[BaseException] = None
    done: Optional[Event] = None
    #: Root span of this ticket's ``kind="transfer"`` trace (None or
    #: NULL_SPAN when tracing is off).
    span: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.state == "done"


class TransferManager:
    """Per-site transfer queues with retry and space reservation.

    Parameters
    ----------
    engine, sites, rng:
        The simulation kernel, the name → Site map, and the named-stream
        RNG registry (only ``data.transfer.*`` streams are drawn).
    rls:
        Optional replica index: sources resolve through it and
        successful registered transfers publish the new replica.
    selector:
        Optional :class:`~repro.data.selector.ReplicaSelector`; when a
        ticket names no source, each attempt re-selects the currently
        best replica (so a retry routes around a source that died).
    catalog:
        Optional :class:`~repro.data.catalog.DatasetCatalog`; completed
        transfers bump the owning dataset's heat counters.
    ledger:
        Optional :class:`~repro.monitoring.transfers.TransferLedger`.
    """

    def __init__(
        self,
        engine: Engine,
        sites: Dict[str, object],
        rng: RngRegistry,
        rls=None,
        selector=None,
        catalog=None,
        ledger=None,
        max_concurrent_per_site: int = 4,
        max_attempts: int = 4,
        backoff_base: float = 2 * MINUTE,
        backoff_cap: float = 60 * MINUTE,
        tracer=None,
    ) -> None:
        if max_concurrent_per_site < 1:
            raise ValueError("max_concurrent_per_site must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.engine = engine
        self.sites = sites
        self.rng = rng
        self.rls = rls
        self.selector = selector
        self.catalog = catalog
        self.ledger = ledger
        self.max_concurrent_per_site = max_concurrent_per_site
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Every managed ticket gets its own ``kind="transfer"`` trace.
        self.tracer = tracer or NULL_TRACER
        self._queues: Dict[str, List[TransferTicket]] = {}
        self._active: Dict[str, int] = {}
        #: Lifetime counters (data.transfers.* metrics).
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.bytes_moved = 0.0
        self._outstanding: List[TransferTicket] = []

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        lfn: str,
        size: float,
        dst_name: str,
        src_name: Optional[str] = None,
        vo: str = "",
        kind: str = "managed",
        register: bool = False,
    ) -> TransferTicket:
        """Queue one transfer; returns its ticket immediately.

        Yield ``ticket.done`` to wait; it always *succeeds* with the
        ticket — check ``ticket.ok`` for the outcome.
        """
        if size < 0:
            raise ValueError("transfer size cannot be negative")
        if dst_name not in self.sites:
            raise KeyError(f"unknown destination site {dst_name!r}")
        ticket = TransferTicket(
            lfn=lfn, size=size, dst_name=dst_name, src_name=src_name,
            vo=vo, kind=kind, register=register, done=self.engine.event(),
        )
        ticket.span = self.tracer.start_trace(
            f"transfer {lfn} -> {dst_name}", kind="transfer",
            vo=vo, lfn=lfn, dst=dst_name, purpose=kind,
        )
        self.submitted += 1
        self._outstanding.append(ticket)
        self._queues.setdefault(dst_name, []).append(ticket)
        self._dispatch(dst_name)
        return ticket

    # -- introspection -----------------------------------------------------
    def queued(self, dst_name: Optional[str] = None) -> int:
        """Tickets waiting for a slot (one site or all)."""
        if dst_name is not None:
            return len(self._queues.get(dst_name, ()))
        return sum(len(q) for q in self._queues.values())

    def active(self, dst_name: Optional[str] = None) -> int:
        """Tickets currently transferring (one site or all)."""
        if dst_name is not None:
            return self._active.get(dst_name, 0)
        return sum(self._active.values())

    def outstanding(self) -> List[TransferTicket]:
        """Tickets not yet finished (queued or active)."""
        return [t for t in self._outstanding if t.state in ("queued", "active")]

    def counters(self) -> Dict[str, float]:
        """Lifetime counters for the monitoring layer."""
        return {
            "submitted": float(self.submitted),
            "completed": float(self.completed),
            "failed": float(self.failed),
            "retries": float(self.retries),
            "bytes_moved": self.bytes_moved,
            "queued": float(self.queued()),
            "active": float(self.active()),
        }

    def drain(self):
        """Generator: wait until every outstanding ticket finishes."""
        while True:
            pending = self.outstanding()
            if not pending:
                return
            yield pending[0].done

    # -- internals ---------------------------------------------------------
    def _dispatch(self, dst_name: str) -> None:
        queue = self._queues.get(dst_name, [])
        while queue and self._active.get(dst_name, 0) < self.max_concurrent_per_site:
            ticket = queue.pop(0)
            ticket.state = "active"
            self._active[dst_name] = self._active.get(dst_name, 0) + 1
            self.engine.process(
                self._run_ticket(ticket),
                name=f"transfer-{ticket.dst_name}-{ticket.lfn}",
            )

    def _pick_source(self, ticket: TransferTicket):
        """The source Site for this attempt (None if unresolvable)."""
        if ticket.src_name is not None:
            return self.sites.get(ticket.src_name)
        dst = self.sites[ticket.dst_name]
        if self.selector is not None:
            try:
                replica = self.selector.best(ticket.lfn, dst)
            except ReplicaNotFoundError:
                return None
            return self.sites.get(replica.site)
        if self.rls is not None:
            try:
                replica = self.rls.best_replica(ticket.lfn)
            except Exception:
                return None
            return self.sites.get(replica.site)
        return None

    def _backoff(self, ticket: TransferTicket) -> float:
        """Exponential backoff with multiplicative jitter, drawn from
        the destination's dedicated ``data.transfer.*`` stream."""
        base = min(
            self.backoff_cap,
            self.backoff_base * (2 ** (ticket.attempts - 1)),
        )
        jitter = self.rng.uniform(
            f"data.transfer.jitter.{ticket.dst_name}", 0.5, 1.5
        )
        return base * jitter

    def _finish(self, ticket: TransferTicket, state: str) -> None:
        ticket.state = state
        self._active[ticket.dst_name] -= 1
        if ticket in self._outstanding:
            self._outstanding.remove(ticket)
        if ticket.span is not None:
            if ticket.error is not None:
                ticket.span.annotate(error=type(ticket.error).__name__)
            ticket.span.annotate(attempts=ticket.attempts)
            self.tracer.finalize(
                ticket.span, "ok" if state == "done" else "error",
            )
        ticket.done.succeed(ticket)
        self._dispatch(ticket.dst_name)

    def _run_ticket(self, ticket: TransferTicket):
        dst = self.sites[ticket.dst_name]
        while True:
            ticket.attempts += 1
            src = self._pick_source(ticket)
            if src is None:
                ticket.error = ReplicaNotFoundError(
                    f"{ticket.lfn}: no reachable source replica"
                )
            elif src.name == ticket.dst_name or ticket.lfn in dst.storage:
                # Already local: nothing to move.
                self.completed += 1
                self._finish(ticket, "done")
                return
            else:
                reservation = None
                srm = dst.services.get("srm")
                try:
                    if srm is not None and srm.available:
                        reservation = srm.prepare_to_put(ticket.size)
                    yield from gridftp.transfer(
                        self.engine, src, dst, ticket.lfn, ticket.size,
                        reservation=reservation,
                        rls=self.rls if ticket.register else None,
                        span=ticket.span,
                    )
                except RETRYABLE as exc:
                    ticket.error = exc
                    if reservation is not None and srm is not None:
                        srm.abort(reservation)
                else:
                    if reservation is not None and srm is not None:
                        srm.put_done(reservation)
                    ticket.error = None
                    self.completed += 1
                    self.bytes_moved += ticket.size
                    if self.catalog is not None:
                        self.catalog.record_access(ticket.lfn, self.engine.now)
                    if self.ledger is not None:
                        self.ledger.record(
                            self.engine.now, ticket.vo, ticket.size,
                            src.name, dst.name, kind=ticket.kind,
                        )
                    self._finish(ticket, "done")
                    return
            if ticket.attempts >= self.max_attempts:
                self.failed += 1
                self._finish(ticket, "failed")
                return
            self.retries += 1
            yield self.engine.timeout(self._backoff(ticket))

    def __repr__(self) -> str:
        return (
            f"<TransferManager {self.queued()} queued {self.active()} active "
            f"{self.completed} ok {self.failed} failed>"
        )
