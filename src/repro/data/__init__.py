"""Managed data movement: the §8 "Storage Services and Data Management"
lesson, implemented.

Four cooperating parts:

* :class:`DatasetCatalog` — logical files grouped into named, VO-owned
  datasets with access counters and pin state;
* :class:`ReplicaSelector` — RLS replicas ranked by route bandwidth and
  source liveness instead of list order;
* :class:`TransferManager` — per-site transfer queues with bounded
  concurrency, exponential-backoff retry, and SRM space reservation;
* :class:`StorageAgent` — disk-pressure control: LRU eviction above a
  high watermark plus hot-dataset replication, published as ``data.*``
  metrics.

:class:`DataManager` bundles the four for the Grid3 builder
(``Grid3Config(data_management=True)``).  Everything here is off by
default and isolated on ``data.*`` RNG streams, so enabling the
subsystem never perturbs a same-seed baseline run.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..sim.units import HOUR

from .agent import SiteDataReport, StorageAgent
from .catalog import Dataset, DatasetCatalog
from .selector import ReplicaSelector
from .transfer import TransferManager, TransferTicket


class DataManager:
    """The wired data-management subsystem for one grid."""

    def __init__(
        self,
        engine: Engine,
        sites: Dict[str, object],
        rls,
        rng: RngRegistry,
        ledger=None,
        interval: float = 1 * HOUR,
        high_watermark: float = 0.85,
        low_watermark: float = 0.70,
        max_concurrent_per_site: int = 4,
        replicate_hot: bool = True,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.sites = sites
        self.rls = rls
        self.catalog = DatasetCatalog()
        self.selector = ReplicaSelector(
            rls, sites, catalog=self.catalog, engine=engine,
        )
        self.transfers = TransferManager(
            engine, sites, rng, rls=rls, selector=self.selector,
            catalog=self.catalog, ledger=ledger,
            max_concurrent_per_site=max_concurrent_per_site,
            tracer=tracer,
        )
        self.agent = StorageAgent(
            engine, sites, catalog=self.catalog, rls=rls,
            transfers=self.transfers, interval=interval,
            high_watermark=high_watermark, low_watermark=low_watermark,
            replicate_hot=replicate_hot,
        )

    @property
    def store(self):
        """The agent's MetricStore of ``data.*`` series."""
        return self.agent.store

    def report(self):
        """Per-site occupancy/eviction rows (the ``repro data`` table)."""
        return self.agent.report()

    def hot_datasets(self, n: int = 5):
        """Top-``n`` datasets by access count."""
        return self.catalog.hot_datasets(n)

    def counters(self) -> Dict[str, float]:
        """Merged agent + transfer counters for ops queries."""
        out = {f"agent.{k}": v for k, v in self.agent.counters().items()}
        out.update(
            {f"transfers.{k}": v for k, v in self.transfers.counters().items()}
        )
        out.update(
            {f"selector.{k}": v for k, v in self.selector.counters().items()}
        )
        return out


__all__ = [
    "DataManager",
    "Dataset",
    "DatasetCatalog",
    "ReplicaSelector",
    "SiteDataReport",
    "StorageAgent",
    "TransferManager",
    "TransferTicket",
]
