"""Replica selection: rank RLS replicas by route quality, not list order.

The paper's §6.4 site-selection criteria are bandwidth-aware ("gatekeeper
network bandwidth capacity") but Grid3's data path was not: jobs took
whatever replica RLS listed first.  :class:`ReplicaSelector` closes that
gap for stage-in — replicas are scored by the *current* state of the
route from their holding site to the destination (bottleneck link
bandwidth divided by the flows already contending for it) and by the
liveness of the source GridFTP endpoint, so a transfer never aims at a
dead server or a saturated uplink when a better copy exists.

Determinism: scores are pure functions of simulation state and ties
break on site name, so selection adds no RNG draws and same-seed runs
stay byte-identical.  Without network/topology context (planning time,
unit tests) the selector degrades to the deterministic site-name order —
exactly the old ``replicas[0]`` behaviour, made explicit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ReplicaNotFoundError
from ..middleware.rls import Replica

#: Score assigned to a replica already present at the destination —
#: always preferred (no transfer needed).
LOCAL_SCORE = float("inf")
#: Score for a replica whose source GridFTP endpoint is down or whose
#: route crosses an interrupted link: eligible only as a last resort.
DEAD_SCORE = 0.0


class ReplicaSelector:
    """Ranks the replicas of a logical file for a destination site.

    Parameters
    ----------
    rls:
        The :class:`~repro.middleware.rls.ReplicaLocationIndex`.
    sites:
        Name → :class:`~repro.fabric.site.Site`; used to resolve routes
        and source-side service health.  Optional — without it the
        selector falls back to deterministic name order.
    """

    def __init__(self, rls, sites: Optional[Dict[str, object]] = None,
                 catalog=None, engine=None) -> None:
        self.rls = rls
        self.sites = sites or {}
        #: Optional DatasetCatalog + Engine: every selection then counts
        #: as a dataset access (the StorageAgent's heat signal).
        self.catalog = catalog
        self.engine = engine
        #: Lifetime counters, published as data.* metrics by the agent.
        self.selections = 0
        self.fallback_selections = 0
        self.dead_sources_avoided = 0

    # -- scoring -----------------------------------------------------------
    def score(self, replica: Replica, dst_site) -> float:
        """Expected per-flow bandwidth (bytes/s) for staging ``replica``
        to ``dst_site`` right now; higher is better."""
        if dst_site is not None and replica.site == dst_site.name:
            return LOCAL_SCORE
        src = self.sites.get(replica.site)
        if src is None or dst_site is None:
            return DEAD_SCORE
        gridftp = src.services.get("gridftp")
        if gridftp is not None and not gridftp.available:
            return DEAD_SCORE
        network = getattr(src, "network", None)
        if network is None:
            return DEAD_SCORE
        share = float("inf")
        for link_name in src.route_to(dst_site):
            link = network.links.get(link_name)
            if link is None:
                continue
            if not link.up:
                return DEAD_SCORE
            # One more flow joins the link: first-order fair share.
            share = min(share, link.bandwidth / (len(link.flows) + 1))
        return share if share != float("inf") else DEAD_SCORE

    def rank(self, lfn: str, dst_site=None) -> List[Replica]:
        """All replicas of ``lfn``, best first.

        Raises :class:`ReplicaNotFoundError` when RLS has none.  Ties
        (including the no-context fallback where every score is equal)
        break on site name, so the ordering is always deterministic.
        """
        replicas = self.rls.locate(lfn)
        have_context = bool(self.sites) and dst_site is not None
        self.selections += 1
        if not have_context:
            self.fallback_selections += 1
            return sorted(replicas, key=lambda r: r.site)
        scored = sorted(
            replicas,
            key=lambda r: (-self.score(r, dst_site), r.site),
        )
        if scored and self.score(scored[0], dst_site) != DEAD_SCORE:
            if any(self.score(r, dst_site) == DEAD_SCORE for r in scored):
                self.dead_sources_avoided += 1
        return scored

    def best(self, lfn: str, dst_site=None) -> Replica:
        """The top-ranked replica (raises ReplicaNotFoundError if none)."""
        ranked = self.rank(lfn, dst_site)
        if not ranked:
            raise ReplicaNotFoundError(lfn)
        chosen = ranked[0]
        if self.catalog is not None:
            self.catalog.auto_define(chosen.lfn, chosen.size)
            now = self.engine.now if self.engine is not None else 0.0
            self.catalog.record_access(chosen.lfn, now)
        return chosen

    def lookup_size(self, lfn: str) -> float:
        """Byte size of a logical file from its best-known replica —
        the planner-side query (no destination yet at planning time)."""
        return self.best(lfn).size

    def counters(self) -> Dict[str, float]:
        """Lifetime counters for the monitoring layer."""
        return {
            "selections": float(self.selections),
            "fallback_selections": float(self.fallback_selections),
            "dead_sources_avoided": float(self.dead_sources_avoided),
        }
