#!/usr/bin/env python
"""Using Grid3 as a CS research laboratory (§1's first goal).

"[Grid3 provides] a platform for experimental computer science research
by GriPhyN and other grid researchers."  The §4.7 demonstrators were
studies run against the production grid; this example runs one with the
`repro.lab` harness: *how much does failure intensity cost, and how
much of that cost does the operations model absorb?* — one experiment,
a results table, and two quantified conclusions, in ~a minute.

Run:  python examples/research_sweep.py
"""

from repro.failures import FailureProfile
from repro.lab import ExperimentSpec, render_results, run_experiment
from repro.sim import DAY, HOUR


# Module-level (picklable) so run_experiment can fan the cells out over
# a process pool.
def metric_success(grid) -> float:
    return grid.acdc_db.success_rate()


def metric_cpu_days(grid) -> float:
    return grid.acdc_db.total_cpu_days()


def metric_wasted_hours(grid) -> float:
    return sum(r.runtime for r in grid.acdc_db.records(succeeded=False)) / HOUR


def metric_tickets(grid) -> float:
    return float(len(grid.igoc.tickets))


def main() -> None:
    base = dict(
        scale=400,
        duration_days=8,
        apps=["ivdgl", "btev"],
        misconfig_probability=0.15,
    )
    metrics = {
        "success": metric_success,
        "cpu_days": metric_cpu_days,
        "wasted_h": metric_wasted_hours,
        "tickets": metric_tickets,
    }
    spec = ExperimentSpec(
        name="failure-intensity-study",
        base=base,
        variants={
            "stable-era": dict(failures=FailureProfile.calm()),
            "shakeout-era": dict(failures=FailureProfile.early()),
            "shakeout-unattended": dict(
                failures=FailureProfile.early(),
                ops_team=False,                # nobody fixes anything
                misconfig_probability=0.4,     # and installs were rough
            ),
        },
        metrics=metrics,
        repeats=3,
    )
    print(f"running {len(spec.variants)} variants x {spec.repeats} seeds "
          "(each an 8-day grid simulation, one worker per CPU)...\n")
    results = run_experiment(
        spec, progress=lambda msg: print(f"  {msg}"), workers=None
    )
    print("\n" + render_results(results))

    by_name = {r.variant: r for r in results}
    stable_t = by_name["stable-era"].mean("tickets")
    shakeout_t = by_name["shakeout-era"].mean("tickets")
    print(f"\nconclusion 1: the operations load scales with failure "
          f"intensity — {stable_t:.0f} tickets/8d in the stable era vs "
          f"{shakeout_t:.0f} in the shake-out era (why §7's <2 FTE "
          "target was ambitious);")
    attended = by_name["shakeout-era"].mean("success")
    unattended = by_name["shakeout-unattended"].mean("success")
    print(f"conclusion 2: the §5.4 support model is what keeps the grid "
          f"usable — completion {attended:.0%} with operations vs "
          f"{unattended:.0%} unattended under the same failure regime.")


if __name__ == "__main__":
    main()
