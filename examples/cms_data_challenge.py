#!/usr/bin/env python
"""The CMS 2004 data-challenge workflow, end to end (§4.2 / §6.2).

Demonstrates the production toolchain in isolation: fill the MCRunJob
control database with simulation requests, let MOP write the 3-step
DAGs (Pythia -> OSCAR/CMSIM -> digitisation), and run them through
Condor-G/DAGMan against the real substrate.  Shows which sites the
matchmaker validates for the long OSCAR jobs (§6.2: "not all sites have
been able to accommodate running them") and the ~70 % efficiency story.

Run:  python examples/cms_data_challenge.py
"""

from repro import Grid3, Grid3Config
from repro.analysis import render_bar_chart, render_table
from repro.failures import FailureProfile
from repro.sim import HOUR


def main() -> None:
    config = Grid3Config(
        seed=11,
        scale=200,
        duration_days=21,
        apps=["uscms"],           # CMS only
        failures=FailureProfile(),  # the full §6 failure environment
    )
    grid = Grid3(config)
    grid.deploy()

    # Which sites can even run a >30 h OSCAR job?  Criterion 3 in action.
    from repro import JobSpec
    oscar_probe = JobSpec(
        name="oscar-probe", vo="uscms", user="cms-user00",
        runtime=35 * HOUR, walltime_request=50 * HOUR, staging="heavy",
    )
    validated = grid.selector.rank(oscar_probe)
    print(f"sites able to accommodate >30h OSCAR jobs: {len(validated)}")
    for name in validated:
        print(f"  {name} (max walltime "
              f"{grid.sites[name].config.max_walltime/HOUR:.0f} h)")

    print("\nRunning the CMS campaign...")
    grid.start_applications()
    grid.run()
    grid.monitors["acdc"].poll_once()

    cms = grid.apps["uscms"]
    db = grid.acdc_db
    records = db.records(vo="uscms")
    print(f"\nMOP DAGs written: {cms.mop.dags_written}")
    print(f"CMS job records: {len(records)}")
    print(f"job success rate: {db.success_rate(vo='uscms'):.1%} "
          "(paper: ~70%)")
    print(f"GEANT4 events fully simulated: {cms.simulated_events:,}")

    by_site = {}
    for r in records:
        by_site[r.site] = by_site.get(r.site, 0) + 1
    print("\nCMS jobs by site (Fig. 4's breakdown at small scale):")
    print(render_bar_chart(by_site, unit=" jobs"))

    failures = db.failure_breakdown(vo="uscms")
    print(f"\nfailure breakdown: {failures}")
    print("(§6.2: 'Jobs often failed due to site configuration problems, "
          "or in groups from site service failures.')")


if __name__ == "__main__":
    main()
