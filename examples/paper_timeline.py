#!/usr/bin/env python
"""The whole Grid2003 story in one run: shake-out, SC2003, stability.

Uses the ``paper-timeline`` scenario — the §6.1-era noisy failure regime
switching to the §7 stable regime mid-December — over a compressed
window, then prints the three artefacts an iGOC shift would care about:
the weekly operations report, the §7 milestones table, and the shape
scorecard against the paper's published results.

Run:  python examples/paper_timeline.py           (takes ~1 minute)
      GRID3_SCALE=200 python examples/paper_timeline.py   (faster)
"""

import os

from repro import Grid3
from repro.analysis import agreement_report, compare_run
from repro.ops import weekly_report
from repro.scenarios import paper_timeline
from repro.sim import DAY


def main() -> None:
    scale = float(os.environ.get("GRID3_SCALE", "100"))
    config = paper_timeline(seed=42, scale=scale)
    config.duration_days = 75.0       # through stabilisation
    grid = Grid3(config)
    grid.deploy()
    grid.start_applications()

    print(f"simulating 75 days at scale {scale:g} "
          "(noisy era -> stable era at day 50)...\n")
    for checkpoint in (21, 49, 75):
        grid.run(days=checkpoint - grid.engine.now / DAY)
        grid.monitors["acdc"].poll_once()
        db = grid.acdc_db
        recent = db.records(since=(checkpoint - 21) * DAY)
        rate = (sum(r.succeeded for r in recent) / len(recent)) if recent else 0.0
        era = "noisy (§6.1)" if checkpoint <= 50 else "stable (§7)"
        print(f"day {checkpoint:>3} [{era:<13}] records={len(db):>5} "
              f"3-week success={rate:.0%}")

    print("\n" + weekly_report(grid, week_index=10))  # a stable-era week
    print("\n" + grid.milestones().render())
    print("\n" + agreement_report(compare_run(grid)))


if __name__ == "__main__":
    main()
