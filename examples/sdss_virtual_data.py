#!/usr/bin/env python
"""Virtual data in action: SDSS cluster finding with Chimera (§4.3).

Shows the virtual-data value proposition the GriPhyN tools were built
for: register transformations and derivations once, then *derive*
workflows — and when some outputs already exist (in RLS), the planner
prunes their derivations, re-running only what's missing.

The script runs an SDSS cluster-finding workflow end to end, deletes
part of the catalog, and re-derives: only the damaged branch re-runs.

Run:  python examples/sdss_virtual_data.py
"""

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import GB, HOUR, MB
from repro.workflow import (
    Derivation,
    PegasusPlanner,
    Transformation,
    VirtualDataCatalog,
)


def build_catalog() -> VirtualDataCatalog:
    vdc = VirtualDataCatalog()
    vdc.add_transformation(Transformation("fieldPrep", runtime=0.5 * HOUR))
    vdc.add_transformation(Transformation("brgSearch", runtime=1.0 * HOUR))
    vdc.add_transformation(Transformation("clusterCatalog", runtime=0.5 * HOUR))
    vdc.add_derivation(Derivation(
        "prep", "fieldPrep", outputs=(("/sdss/run42/fields", 200 * MB),)
    ))
    searches = []
    for f in range(6):
        out = (f"/sdss/run42/clusters-{f}", 30 * MB)
        searches.append(out)
        vdc.add_derivation(Derivation(
            f"search-{f}", "brgSearch",
            inputs=("/sdss/run42/fields",), outputs=(out,),
        ))
    vdc.add_derivation(Derivation(
        "merge", "clusterCatalog",
        inputs=tuple(lfn for lfn, _ in searches),
        outputs=(("/sdss/run42/catalog", 100 * MB),),
    ))
    return vdc


def main() -> None:
    grid = Grid3(Grid3Config(
        seed=17, scale=300, duration_days=5, apps=[],
        failures=FailureProfile.disabled(), misconfig_probability=0.0,
    ))
    grid.deploy()
    grid.add_user("sdss", "astro")   # §5.3 VO admission
    vdc = build_catalog()
    planner = PegasusPlanner(grid.rls, grid.rng)

    # --- first derivation: everything must run ------------------------
    dax = vdc.derive(["/sdss/run42/catalog"])
    print(f"first derive: {len(dax)} derivations needed "
          f"(prep + 6 searches + merge)")
    dag = planner.plan(dax, vo="sdss", user="astro", name="run42",
                       archive_site="FNAL_CMS")
    result = grid.engine.run_process(grid.dagman["sdss"].run(dag))
    print(f"workflow succeeded: {result.succeeded}; "
          f"{result.nodes_done} nodes done")
    materialized = set(grid.rls.catalogued_lfns())
    print(f"RLS now knows {len(materialized)} logical files")

    # --- nothing to do: the catalog already exists --------------------
    dax2 = vdc.derive(["/sdss/run42/catalog"], materialized=materialized)
    print(f"\nsecond derive with everything materialized: "
          f"{len(dax2)} derivations (virtual data at work)")

    # --- partial damage: re-derive only the missing branch ------------
    for lfn in ("/sdss/run42/catalog", "/sdss/run42/clusters-3"):
        for site_name in grid.rls.sites_with(lfn):
            grid.rls.unregister(site_name, lfn)
    remaining = set(grid.rls.catalogued_lfns())
    dax3 = vdc.derive(["/sdss/run42/catalog"], materialized=remaining)
    print(f"\nafter losing clusters-3 and the catalog: "
          f"{len(dax3)} derivations to re-run: "
          f"{sorted(dax3.derivations)}")
    dag3 = planner.plan(dax3, vo="sdss", user="astro", name="run42-repair",
                        archive_site="FNAL_CMS")
    result3 = grid.engine.run_process(grid.dagman["sdss"].run(dag3))
    print(f"repair workflow succeeded: {result3.succeeded} "
          f"({result3.nodes_done} nodes, vs 8 for the full workflow)")


if __name__ == "__main__":
    main()
