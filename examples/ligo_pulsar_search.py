#!/usr/bin/env python
"""The LIGO blind pulsar search with its 4 GB stage-ins (§4.4).

Runs the *full* §4.4 workflow (not Table 1's tiny test probes): SFT
frequency-band files are published at the LIGO home facility, each
search job stages ~4 GB to its execution site over GridFTP, computes
for several hours, and ships candidate lists back home, updating RLS.

Shows the data-aware matchmaking at work: with 4 GB stage-ins, the
§6.4 bandwidth criterion pushes jobs toward well-connected sites.

Run:  python examples/ligo_pulsar_search.py
"""

from repro import Grid3, Grid3Config
from repro.analysis import render_bar_chart
from repro.sim import GB, bytes_to_gb


def main() -> None:
    config = Grid3Config(
        seed=23,
        scale=200,
        duration_days=14,
        apps=["ligo"],
        ligo_test_mode=False,      # the real §4.4 search workflow
    )
    grid = Grid3(config)
    grid.deploy()
    grid.start_applications()

    print("Running the all-sky pulsar search over S2...")
    grid.run()
    grid.monitors["acdc"].poll_once()

    ligo = grid.apps["ligo"]
    db = grid.acdc_db
    records = db.records(vo="ligo")
    searched = [r for r in records if r.name.startswith("pulsar-search")]
    print(f"\nsearch jobs completed: {len(searched)} "
          f"({db.success_rate(vo='ligo'):.0%} success)")
    print(f"SFT bands published at UWM_LIGO: {ligo._sft_published}")

    staged = sum(r.bytes_in for r in records)
    returned = sum(r.bytes_out for r in records)
    print(f"data staged to execution sites: {bytes_to_gb(staged):.1f} GB "
          f"(~4 GB per job, §4.4)")
    print(f"candidate data returned to LIGO: {bytes_to_gb(returned):.1f} GB")

    by_site = {}
    for r in searched:
        by_site[r.site] = by_site.get(r.site, 0) + 1
    print("\nexecution sites chosen by the matchmaker:")
    print(render_bar_chart(by_site, unit=" jobs"))

    # The results made it home: candidates registered at UWM in RLS.
    candidates = [
        lfn for lfn in grid.rls.catalogued_lfns() if "candidates" in lfn
    ]
    print(f"\ncandidate files registered in RLS: {len(candidates)}")
    home = grid.sites["UWM_LIGO"]
    print(f"UWM_LIGO storage in use: {bytes_to_gb(home.storage.used):.1f} GB")


if __name__ == "__main__":
    main()
