#!/usr/bin/env python
"""A week in the life of the iGOC: failures, tickets, repairs (§5.4, §6).

Runs a production mix under the noisy §6-era failure environment and
narrates what the operations layer saw: probe results from the Site
Status Catalog, trouble tickets opened and resolved, the support-FTE
milestone, and the §8 policy-enforcement audit.

Run:  python examples/operations_week.py
"""

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.ops import audit_policy, policy_for_site
from repro.fabric import GRID3_VOS
from repro.sim import DAY, HOUR


def main() -> None:
    config = Grid3Config(
        seed=31,
        scale=150,
        duration_days=7,
        apps=["ivdgl", "exerciser", "usatlas"],
        failures=FailureProfile(
            service_failure_interval=2 * DAY,      # a rough week
            network_interruption_interval=3 * DAY,
            node_mtbf=30 * DAY,
            nightly_rollover={"UB_ACDC": 0.25},
        ),
        misconfig_probability=0.25,
    )
    grid = Grid3(config)
    grid.deploy()
    grid.start_applications()

    print("Simulating 7 days of operations under a noisy failure regime...\n")
    for day in range(1, 8):
        grid.run(days=1)
        injected = dict(grid.injector.injected)
        open_tickets = len(grid.igoc.tickets.open_tickets())
        failing = [
            (site, problems)
            for site, status, problems in grid.monitors["status"].status_page()
            if status == "FAIL"
        ]
        print(f"day {day}: injected={injected} "
              f"open_tickets={open_tickets} failing_sites={len(failing)}")
        for site, problems in failing[:2]:
            print(f"    {site}: {'; '.join(problems)}")
    grid.monitors["acdc"].poll_once()

    tickets = grid.igoc.tickets
    print(f"\ntickets filed: {len(tickets)}")
    print(f"mean time to resolve: {tickets.mean_time_to_resolve()/HOUR:.1f} h")
    print(f"support load: {tickets.support_fte(0, grid.engine.now):.2f} FTE "
          "(§7 target: < 2)")
    print(f"jobs killed by injected failures: {grid.injector.jobs_killed}")

    db = grid.acdc_db
    print(f"\njob records: {len(db)}, success {db.success_rate():.0%}")
    print(f"failure breakdown: {db.failure_breakdown()}")
    site_failures = db.failure_breakdown().get("site", 0)
    total_failures = sum(db.failure_breakdown().values())
    if total_failures:
        print(f"site-caused share: {site_failures/total_failures:.0%} "
              "(§6.1: ~90%)")

    # The §8 lesson: audit that job policies were actually enforced.
    policies = {
        name: policy_for_site(site, GRID3_VOS)
        for name, site in grid.sites.items()
    }
    violations = audit_policy(db, policies)
    print(f"\npolicy audit (§8): {len(violations)} violations detected")
    for v in violations[:5]:
        print(f"  {v.site} [{v.kind}] {v.detail}")


if __name__ == "__main__":
    main()
