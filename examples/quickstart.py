#!/usr/bin/env python
"""Quickstart: deploy a scaled-down Grid3, run a week, read the metrics.

This is the smallest end-to-end use of the library: build the grid from
the 27-site catalog (scaled 200x down so it runs in seconds), deploy the
VDT middleware onto every site, launch all seven application
demonstrator classes, simulate seven days of operations, and print what
the monitoring stack saw.

Run:  python examples/quickstart.py
"""

from repro import Grid3, Grid3Config
from repro.analysis import render_table
from repro.sim import DAY, bytes_to_tb


def main() -> None:
    config = Grid3Config(
        seed=7,
        scale=200,          # 2800 CPUs -> ~looking-glass grid of ~60
        duration_days=7,
    )
    grid = Grid3(config)

    print("Deploying Grid3 (27 sites, VDT install, certification)...")
    grid.deploy()
    print(f"  sites online: {sum(s.online for s in grid.sites.values())}/27")
    print(f"  CPU slots (scaled): {grid.total_cpus()}")
    print(f"  registered users: {grid.registered_users()}")

    print("\nStarting the application demonstrators...")
    grid.start_applications()
    for name in grid.apps:
        print(f"  {name}")

    print("\nSimulating 7 days of production...")
    grid.run()
    grid.monitors["acdc"].poll_once()

    db = grid.acdc_db
    print(f"\nACDC job records: {len(db)}")
    print(f"overall job success rate: {db.success_rate():.1%}")
    print(f"failure breakdown: {db.failure_breakdown()}")
    print(f"data moved: {bytes_to_tb(grid.ledger.total_bytes()):.2f} TB (scaled)")

    rows = [
        (vo, len(db.records(vo=vo)), f"{db.success_rate(vo=vo):.0%}",
         f"{db.total_cpu_days(vo=vo):.1f}")
        for vo in db.vos()
    ]
    print("\nPer-VO summary:")
    print(render_table(["vo", "jobs", "success", "cpu-days"], rows))

    print("\nSite status page (first 8 rows):")
    for site, status, problems in grid.monitors["status"].status_page()[:8]:
        print(f"  {site:<16} {status:<6} {'; '.join(problems)}")


if __name__ == "__main__":
    main()
