#!/usr/bin/env python
"""Submit-and-wait against grid-as-a-service with the typed client.

Starts a local service on an ephemeral port (durable registry in a
temp dir, per-client quotas on), then drives it purely through
:class:`repro.GridClient` — the stdlib v1 HTTP client: submit a small
what-if run on the interactive lane, stream its state to completion,
walk the paginated ops report, and show the dedup + admission story
(an identical resubmission is served from cache; the admission gauges
account every client).

Everything here works the same against a long-lived remote server:
replace the ephemeral ``service.url`` with yours, e.g. after
``python -m repro serve --port 8080 --state-dir ./state``.

Run:  python examples/service_client.py
"""

import tempfile

from repro import GridClient, GridServiceError, ReproService

#: Small enough to finish in about a second, real enough to report on.
WHAT_IF = {"scale": 3000, "duration_days": 0.1, "apps": ["exerciser"],
           "seed": 42}


def main() -> None:
    with tempfile.TemporaryDirectory() as state_dir:
        service = ReproService(port=0, workers=2, state_dir=state_dir,
                               quota_per_client=4).start()
        try:
            client = GridClient(service.url)
            health = client.health()
            print(f"service up at {service.url} "
                  f"(durable={health.durable}, workers={health.workers})")

            submitted = client.submit(WHAT_IF, client_id="example",
                                      lane="interactive")
            print(f"submitted run {submitted.run_id} "
                  f"(dedup={submitted.dedup}, digest={submitted.digest[:12]})")

            view = client.wait(submitted.run_id, timeout=300.0)
            print(f"run {view.run_id} -> {view.state} "
                  f"in {view.elapsed_s:.2f}s (client={view.client}, "
                  f"lane={view.lane})")
            if view.state != "done":
                print(f"  error: {view.error}")
                return

            page = client.report(view.run_id, "ops", limit=5)
            print(f"\nops report: {page.total} rows; first {len(page.rows)}:")
            for row in page.rows:
                name = row.get("site", row.get("record", "?"))
                print(f"  {name}")

            # Dedup: the identical config costs nothing the second time.
            again = client.submit(WHAT_IF, client_id="example",
                                  lane="interactive")
            print(f"\nidentical resubmission -> dedup={again.dedup} "
                  f"(same run {again.run_id})")

            # Admission observability: the same gauges Prometheus scrapes.
            gauges = client.metrics()
            print("admission gauges:")
            for key in sorted(gauges):
                if key.startswith("service.admission."):
                    print(f"  {key} = {gauges[key]}")
        except GridServiceError as error:
            # Typed failures: branch on error.code, read error.hint.
            print(f"service refused: {error.code} — {error.hint}")
        finally:
            service.close(drain=True, timeout=60.0)


if __name__ == "__main__":
    main()
