"""Compatibility shim for legacy tooling.

All configuration lives in pyproject.toml; this file only enables the
classic ``setup.py develop`` fallback on environments whose setuptools
cannot do PEP 660 editable builds (e.g. fully offline boxes missing the
``wheel`` package).
"""

from setuptools import setup

setup()
