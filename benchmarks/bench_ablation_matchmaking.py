"""Ablation: §6.4 requirement-driven site selection vs random placement.

The paper's four selection criteria (connectivity, disk, walltime,
bandwidth) exist because violating them kills jobs.  This bench runs an
identical requirement-heavy workload (GADU-style outbound jobs, long
OSCAR-style jobs, data-heavy jobs) under the smart selector and under
the random baseline, and compares completion rates and wasted compute.
"""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import HOUR


def run_variant(matchmaking: str):
    grid = Grid3(Grid3Config(
        seed=77, scale=300, duration_days=30,
        apps=["ivdgl", "uscms", "ligo"],   # outbound-needy + long + data-heavy
        matchmaking=matchmaking,
        ligo_test_mode=False,
        failures=FailureProfile.disabled(),  # isolate placement effects
        misconfig_probability=0.0,
    ))
    grid.run_full()
    db = grid.acdc_db
    # Include never-placed / policy-rejected logical jobs via Condor-G.
    cg_failed = sum(c.failed for c in grid.condorg.values())
    cg_done = sum(c.completed for c in grid.condorg.values())
    wasted_hours = sum(
        r.runtime for r in db.records(succeeded=False)
    ) / HOUR
    return {
        "logical_completed": cg_done,
        "logical_failed": cg_failed,
        "records": len(db),
        "record_success": db.success_rate(),
        "wasted_cpu_hours": wasted_hours,
        "resubmissions": sum(c.resubmissions for c in grid.condorg.values()),
    }


def test_matchmaking_ablation(benchmark):
    def both():
        return run_variant("smart"), run_variant("random")

    smart, random_ = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nsmart (§6.4 criteria): {smart}")
    print(f"random placement:      {random_}")

    smart_rate = smart["logical_completed"] / max(
        1, smart["logical_completed"] + smart["logical_failed"]
    )
    random_rate = random_["logical_completed"] / max(
        1, random_["logical_completed"] + random_["logical_failed"]
    )
    print(f"logical completion: smart {smart_rate:.1%} vs random {random_rate:.1%}")

    # Shape: requirement-driven selection completes more of the same
    # workload and wastes less on doomed placements.
    assert smart_rate > random_rate
    assert smart["record_success"] >= random_["record_success"]
    # Random placement churns through retries.
    assert random_["resubmissions"] >= smart["resubmissions"]
