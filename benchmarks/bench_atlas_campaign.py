"""§6.1: the U.S. ATLAS GCE production campaign.

Paper: "More than 5000 jobs (Geant3-based simulation followed by
reconstruction) were processed at 18 sites, with total data I/O of
about 1.1 TB ... We observed a failure rate of approximately 30%, where
failures are defined as jobs experiencing errors in any processing step
... Approximately 90% of failures were due to site problems."

This bench runs an ATLAS-only campaign under the full (noisy, §6-era)
failure environment and checks the failure-rate band, the site-failure
dominance, and the rescaled data-I/O ballpark.
"""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import DAY, TB, bytes_to_tb

SCALE = 100.0


def run_campaign():
    grid = Grid3(Grid3Config(
        seed=61, scale=SCALE, duration_days=60, apps=["usatlas"],
        # The §6.1 era was pre-stabilisation: default (noisy) failures
        # and a realistic misconfiguration rate.
        failures=FailureProfile(),
        misconfig_probability=0.2,
    ))
    grid.run_full()
    return grid


def test_atlas_campaign(benchmark):
    grid = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    db = grid.acdc_db
    records = db.records(vo="usatlas")
    app = grid.apps["usatlas"]

    jobs_rescaled = len(records) * SCALE
    failure_rate = 1.0 - db.success_rate(vo="usatlas")
    breakdown = db.failure_breakdown(vo="usatlas")
    site_share = (
        breakdown.get("site", 0) / sum(breakdown.values())
        if breakdown else 0.0
    )
    io_bytes = sum(r.bytes_in + r.bytes_out for r in records) * SCALE
    sites_used = len({r.site for r in records})

    print(f"\nATLAS campaign (60 d at scale {SCALE:.0f}):")
    print(f"  jobs processed (rescaled): {jobs_rescaled:,.0f} (paper: >5000)")
    print(f"  sites used: {sites_used} (paper: 18)")
    print(f"  failure rate: {failure_rate:.1%} (paper: ~30% pre-stabilisation)")
    print(f"  site-caused share of failures: {site_share:.0%} (paper: ~90%)")
    print(f"  total data I/O (rescaled): {bytes_to_tb(io_bytes):.2f} TB (paper: ~1.1 TB for 5000 jobs)")
    print(f"  failure breakdown: {breakdown}")

    # Paper shapes.
    assert jobs_rescaled > 5000
    assert sites_used >= 5
    assert 0.02 <= failure_rate <= 0.45
    if sum(breakdown.values()) >= 10:
        assert site_share >= 0.5, "site problems must dominate failures"
    # Data I/O per job ~ a few hundred MB (1.1 TB / 5000 jobs); allow a
    # generous band around the paper's ratio.
    per_job_gb = bytes_to_tb(io_bytes) * 1000 / max(1.0, jobs_rescaled)
    assert 0.02 <= per_job_gb <= 5.0


def run_prestabilization_campaign():
    """The §6.1 observation era precisely: the October/November
    shake-out rates, no established operations model yet."""
    grid = Grid3(Grid3Config(
        seed=61, scale=SCALE, duration_days=45, apps=["usatlas"],
        failures=FailureProfile.early(),
        misconfig_probability=0.35,
        ops_team=False,
    ))
    grid.run_full()
    return grid


def test_atlas_prestabilization_failure_band(benchmark):
    """The headline §6.1 numbers: "a failure rate of approximately 30%
    ... Approximately 90% of failures were due to site problems" —
    reproduced under the era-appropriate configuration."""
    grid = benchmark.pedantic(
        run_prestabilization_campaign, rounds=1, iterations=1
    )
    db = grid.acdc_db
    failure_rate = 1.0 - db.success_rate(vo="usatlas")
    breakdown = db.failure_breakdown(vo="usatlas")
    site_share = (
        breakdown.get("site", 0) / sum(breakdown.values())
        if breakdown else 0.0
    )
    print(f"\npre-stabilisation ATLAS (45 d, no ops model):")
    print(f"  failure rate: {failure_rate:.1%} (paper: ~30%)")
    print(f"  site-caused share: {site_share:.0%} (paper: ~90%)")
    print(f"  breakdown: {breakdown}")
    assert 0.12 <= failure_rate <= 0.45, "outside the §6.1 band"
    assert site_share >= 0.7, "site problems must dominate (~90% in §6.1)"
