"""Shared fixtures for the benchmark harness.

The expensive piece — simulating the full 183-day Table 1 observation
window with all eight demonstrators — runs **once per session** at
``SCALE`` (default 50: a 27-site, ~56-CPU looking-glass grid) and is
shared by every figure/table bench.  The per-bench ``benchmark`` calls
then time the *analysis* (the part a paper reader would re-run), while
shape assertions check the reproduction against the paper's reported
values.

Extensive quantities are rescaled by ``SCALE`` when compared to the
paper; intensive ones (rates, fractions, orderings) compare directly.
Set ``GRID3_BENCH_SCALE`` in the environment to trade fidelity for
speed.
"""

import datetime as dt
import os

import pytest

from repro import Grid3, Grid3Config
from repro.sim import DAY, SimCalendar

#: Workload/CPU divisor for the reference run.
SCALE = float(os.environ.get("GRID3_BENCH_SCALE", "50"))

#: The paper's figure windows, as sim-time offsets from the epoch.
_CAL = SimCalendar()
SC2003_WINDOW = _CAL.window(dt.datetime(2003, 10, 25), 30)       # Fig. 2/3/5
CMS_WINDOW = _CAL.window(dt.datetime(2003, 11, 1), 150)          # Fig. 4
FULL_WINDOW = (0.0, 183 * DAY)                                   # Table 1 / Fig. 6


@pytest.fixture(scope="session")
def reference_run():
    """The full-mix 183-day Grid3 run behind Figures 2-6 and Table 1."""
    grid = Grid3(Grid3Config(seed=42, scale=SCALE, duration_days=183))
    grid.run_full()
    return grid


@pytest.fixture(scope="session")
def reference_viewer(reference_run):
    return reference_run.viewer()
