"""Ablation: SRM storage reservation (§6.2 / §8).

Paper: "storage reservation (e.g., as provided by SRM) would have
prevented various storage-related service failures" — Grid3 ran
*without* managed storage and §8 lists it as the top infrastructure
lesson.

The bench builds a storage-constrained scenario (small SEs, output-heavy
jobs) and runs the identical workload with SRM off (the deployed
system) and on (the lesson applied).  Expected shape: without SRM,
jobs crash mid-flight on StorageFullError after burning their compute;
with SRM, conflicts surface as cheap scheduling-time rejections and the
disk-full crash class disappears.
"""

import pytest

from repro.core.job import Job, JobSpec
from repro.core.runner import Grid3Runner
from repro.errors import ReservationError, StorageFullError
from repro.fabric import Network, Site
from repro.middleware.gridftp import attach_gridftp
from repro.middleware.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.middleware.srm import attach_srm
from repro.scheduling.batch import BatchScheduler
from repro.sim import Engine, GB, HOUR, RngRegistry, TB


def run_scenario(use_srm: bool, n_jobs: int = 60):
    eng = Engine()
    net = Network(eng)
    rng = RngRegistry(7)
    exec_site = Site(eng, "Exec", "U", "usatlas", nodes=16, cpus_per_node=1,
                     disk_capacity=40 * GB, network=net)
    archive = Site(eng, "Tier1", "Lab", "usatlas", nodes=2, cpus_per_node=1,
                   disk_capacity=60 * GB, network=net, access_bandwidth=1e9)
    for site in (exec_site, archive):
        attach_gridftp(eng, site, setup_latency=0.0)
        if use_srm:
            attach_srm(eng, site)
    sites = {"Exec": exec_site, "Tier1": archive}
    rls = ReplicaLocationIndex(eng)
    for name in sites:
        rls.attach_lrc(LocalReplicaCatalog(name))
    runner = Grid3Runner(sites, rls, rng, use_srm=use_srm)
    sched = BatchScheduler(eng, exec_site, runner=runner)
    jobs = []
    for i in range(n_jobs):
        job = Job(spec=JobSpec(
            name=f"sim-{i:03d}", vo="usatlas", user="prod",
            runtime=4 * HOUR, walltime_request=24 * HOUR,
            outputs=((f"/out/{i:03d}", 2 * GB),),
            archive_site="Tier1",
        ))
        jobs.append(job)
        sched.submit(job)
    eng.run()
    disk_full = sum(isinstance(j.error, StorageFullError) for j in jobs)
    rejected = sum(isinstance(j.error, ReservationError) for j in jobs)
    wasted_cpu_hours = sum(
        j.run_time for j in jobs if j.failed
    ) / HOUR
    succeeded = sum(j.succeeded for j in jobs)
    return {
        "succeeded": succeeded,
        "disk_full_crashes": disk_full,
        "reservation_rejections": rejected,
        "wasted_cpu_hours": wasted_cpu_hours,
    }


def test_srm_ablation(benchmark):
    def both():
        return run_scenario(False), run_scenario(True)

    without, with_srm = benchmark(both)
    print(f"\nwithout SRM (deployed Grid3): {without}")
    print(f"with SRM (the §8 lesson):     {with_srm}")

    # The deployed system suffers mid-job disk-full crashes.
    assert without["disk_full_crashes"] > 0
    # SRM eliminates that class entirely...
    assert with_srm["disk_full_crashes"] == 0
    # ...converting conflicts to scheduling-time rejections...
    assert with_srm["reservation_rejections"] > 0
    # ...and slashing the compute burned by failed jobs.
    assert with_srm["wasted_cpu_hours"] < without["wasted_cpu_hours"] * 0.5
    # SRM never *reduces* completed work.
    assert with_srm["succeeded"] >= without["succeeded"]
