"""The headline check: the codified shape-claim scorecard.

``repro.analysis.compare`` turns every shape claim the benches assert —
Table 1 orderings and concentrations, Fig. 5's volumes, Fig. 6's
ramp-and-sustain, the §7 milestone posture — into one machine-scored
list.  This bench runs it against the session's reference run and
requires near-total agreement.
"""

from repro.analysis.compare import agreement_report, compare_run

from .conftest import SC2003_WINDOW


def test_shape_agreement_scorecard(benchmark, reference_run):
    grid = reference_run
    t0, t1 = SC2003_WINDOW

    def score():
        # Table 1/Fig. 6/§7 over the whole run; Fig. 5 over its window.
        checks = compare_run(grid)
        from repro.analysis.compare import compare_figure5
        window_checks = compare_figure5(
            grid.ledger, t0, t1, rescale=grid.config.scale
        )
        return checks + window_checks

    checks = benchmark(score)
    print("\n" + agreement_report(checks))

    passed = sum(c.passed for c in checks)
    # Allow at most two misses (SDSS's noise-limited peak month is the
    # known one; see EXPERIMENTS.md).
    assert passed >= len(checks) - 2, agreement_report(checks)
    # The §7 posture itself must hold.
    assert any(c.name == "most §7 milestones met" and c.passed for c in checks)
