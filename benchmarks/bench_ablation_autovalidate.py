"""Ablation: automated site validation (§8, first lesson).

"Automated configuration, testing, and tuning scripts are needed to
give immediate feedback regarding potential software installation
issues, and to further reduce the cost of operating Grid3."

Early Grid3 discovered misconfigured installs only through failing jobs
and ad-hoc human investigation.  The bench deploys a grid where half the
installs are silently misconfigured and runs identical workloads with
(a) no automated remediation — the §6.2-era experience ("jobs often
failed due to site configuration problems") — and (b) the AutoValidator
running the §5.1 test battery on a 30-minute cadence, then compares how
many jobs die to SiteMisconfigurationError.
"""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.ops.autovalidate import AutoValidator
from repro.sim import MINUTE


def run_variant(auto_validate: bool):
    grid = Grid3(Grid3Config(
        seed=93, scale=300, duration_days=20,
        apps=["ivdgl", "exerciser"],
        failures=FailureProfile.disabled(),
        misconfig_probability=0.5,       # a rough install day
        ops_team=False,                  # isolate the automated path
    ))
    grid.deploy()
    validator = None
    if auto_validate:
        validator = AutoValidator(
            grid.engine, list(grid.sites.values()), interval=30 * MINUTE
        )
    grid.start_applications()
    grid.run()
    grid.monitors["acdc"].poll_once()
    db = grid.acdc_db
    misconfig_failures = sum(
        1 for r in db.records(succeeded=False)
        if r.failure_type == "SiteMisconfigurationError"
    )
    return {
        "records": len(db),
        "success": db.success_rate(),
        "misconfig_failures": misconfig_failures,
        "fixes": validator.fixes_applied if validator else None,
    }


def test_autovalidation_ablation(benchmark):
    def both():
        return run_variant(False), run_variant(True)

    unattended, automated = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nno remediation (§6.2 era): {unattended}")
    print(f"with AutoValidator:        {automated}")

    # The validator actually fixed misconfigured installs.
    assert automated["fixes"] and automated["fixes"] > 0
    # Unattended misconfiguration kills jobs all window long; automated
    # validation eliminates nearly all of it.
    assert unattended["misconfig_failures"] > 0
    assert (
        automated["misconfig_failures"] < unattended["misconfig_failures"] * 0.5
    )
    # Overall success improves.
    assert automated["success"] > unattended["success"]
