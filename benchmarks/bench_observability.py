"""Observability overhead bench: progress hooks on vs off, same seed.

The progress pipeline's design contract is "zero cost when off, cheap
when on": a hooks-off run takes exactly the pre-observability code
path, and a hooks-on run only adds sliced ``engine.run(until=)`` calls
plus counter reads between slices.  This bench times both variants
interleaved (A/B/A/B, so machine drift hits both arms equally), checks
the byte-identity claim on the kernel counters, and writes
``BENCH_obs.json`` with the overhead percentage CI gates at <= 5%.
"""

import json
import pathlib
import time

from repro import Grid3, Grid3Config

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"

CONFIG = dict(scale=200.0, duration_days=7.0, seed=42)
# min-of-N needs enough rounds to shake scheduler noise out of both
# arms; 3 was observably too few (±10% round-to-round on a busy box).
ROUNDS = 6


def run_once(progress):
    grid = Grid3(Grid3Config(**CONFIG))
    start = time.perf_counter()
    grid.run_full(progress=progress)
    elapsed = time.perf_counter() - start
    return elapsed, grid


def test_progress_hook_overhead(benchmark):
    results = {"off_s": [], "on_s": [], "events": 0}

    # Warmup pair (untimed): allocator growth and import costs land
    # here instead of inside the first measured round.
    run_once(None)
    run_once(lambda e: None)

    def interleaved():
        for _ in range(ROUNDS):
            off_elapsed, off_grid = run_once(None)
            results["off_s"].append(off_elapsed)
            events = []
            on_elapsed, on_grid = run_once(events.append)
            results["on_s"].append(on_elapsed)
            results["events"] = len(events)
            # The zero-perturbation contract, checked every round.
            assert on_grid.engine.dispatched == off_grid.engine.dispatched
            assert on_grid.engine.now == off_grid.engine.now
        return results

    benchmark.pedantic(interleaved, rounds=1, iterations=1)

    off = min(results["off_s"])
    on = min(results["on_s"])
    overhead_pct = round((on - off) / off * 100.0, 2)
    print(f"\nhooks off (best of {ROUNDS}): {off:.3f}s")
    print(f"hooks on  (best of {ROUNDS}): {on:.3f}s "
          f"({results['events']} events emitted)")
    print(f"progress-hook overhead: {overhead_pct:+.2f}%")

    OUT.write_text(json.dumps({
        "bench": "progress_hook_overhead",
        "config": CONFIG,
        "rounds": ROUNDS,
        "hooks_off_best_s": round(off, 4),
        "hooks_on_best_s": round(on, 4),
        "events_emitted": results["events"],
        "overhead_pct": overhead_pct,
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT.name}")

    # The gate CI re-checks from the JSON: hooks must cost <= 5%.
    assert overhead_pct <= 5.0, (
        f"progress hooks cost {overhead_pct}% (> 5% budget)"
    )
