"""Table 1: Grid3 computational job statistics per user class over
2003-10-23 .. 2004-04-23 (source: the ACDC job monitor).

Shape checks against the paper's table:
  * job-count ordering: Exerciser >> iVDGL > USCMS > USATLAS > SDSS > BTEV > LIGO
  * runtime ordering: USCMS has by far the longest mean runtime,
    USATLAS second; the Exerciser the shortest;
  * CPU ordering: USCMS dominates total CPU-days;
  * peak months: the LHC-era classes peak in 11-2003;
  * user counts are exact (they are configuration, not outcome).
"""

from repro.analysis import PAPER_TABLE1, compute_table1, render_table1

from .conftest import FULL_WINDOW, SCALE


def test_table1_job_statistics(benchmark, reference_run):
    db = reference_run.acdc_db
    cal = reference_run.calendar

    def compute():
        return compute_table1(db, cal)

    rows = benchmark(compute)
    print("\nMeasured (at scale %.0f; job counts x%.0f for paper comparison):" % (SCALE, SCALE))
    print(render_table1(rows))
    print("\nPaper Table 1 reference:")
    for cls, ref in PAPER_TABLE1.items():
        print(f"  {cls:<10} jobs={ref['jobs']:>6} avg={ref['avg_runtime_hr']:>6.2f}h "
              f"cpu-days={ref['total_cpu_days']:>9.1f} peak={ref['peak_month']}")

    # Every class produced records.
    for cls in ("Exerciser", "iVDGL", "USCMS", "USATLAS", "SDSS", "BTEV", "LIGO"):
        assert cls in rows, f"class {cls} missing from Table 1"

    jobs = {cls: row.jobs for cls, row in rows.items()}
    # Job-count ordering (the big separations; neighbours can swap at
    # small scale, the extremes cannot).
    assert jobs["Exerciser"] == max(jobs.values())
    assert jobs["LIGO"] == min(jobs.values())
    assert jobs["Exerciser"] > jobs["iVDGL"] > jobs["USATLAS"]
    assert jobs["USCMS"] > jobs["SDSS"]

    # Runtime ordering.
    avg = {cls: row.avg_runtime_hr for cls, row in rows.items()}
    assert avg["USCMS"] == max(avg.values())
    assert avg["USCMS"] > 2 * avg["USATLAS"] > 2 * avg["iVDGL"]
    assert avg["Exerciser"] < 0.5

    # CPU dominance.
    cpu = {cls: row.total_cpu_days for cls, row in rows.items()}
    assert cpu["USCMS"] > 0.5 * sum(cpu.values())

    # Peak months for the SC2003-era classes.
    assert rows["USCMS"].peak_month == "11-2003"
    assert rows["USATLAS"].peak_month == "11-2003"
    assert rows["BTEV"].peak_month == "11-2003"
    assert rows["iVDGL"].peak_month == "11-2003"

    # User counts are configured, hence exact.
    assert rows["BTEV"].users == 1
    assert rows["Exerciser"].users == 3
    assert rows["USCMS"].users <= 26 and rows["USATLAS"].users <= 25

    # iVDGL's favourite-resource concentration (paper: 88.1 % of peak
    # production from one resource).
    assert rows["iVDGL"].max_single_resource_pct > 40.0
