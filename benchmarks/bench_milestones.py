"""§7 milestones and metrics: the paper's target/actual table.

Paper actuals: CPUs 2163 (peak 2800), users 102, applications 10,
concurrent-application sites 17, 4 TB/day transferred, 40-70 % resource
utilisation, job efficiency varying (>90 % at well-run sites), 1300
peak concurrent jobs, <2 FTE sustained operations load.
"""

from repro.ops import PAPER_ACTUALS, PAPER_TARGETS

from .conftest import FULL_WINDOW


def test_section7_milestones(benchmark, reference_run):
    grid = reference_run

    def compute():
        return grid.milestones(0.0, grid.engine.now)

    tracker = benchmark(compute)
    print("\n" + tracker.render())

    by_key = {m.key: m for m in tracker.milestones()}

    # The paper "met and even surpassed most of these milestones" —
    # require most targets met here too.
    met = sum(1 for m in tracker.milestones() if m.met)
    assert met >= 6, f"only {met}/9 milestones met"

    # Individual shape checks against the paper's actuals.
    assert by_key["cpus"].achieved >= 2000          # paper: 2163
    assert by_key["users"].achieved == 102          # paper: 102 exactly
    assert by_key["applications"].achieved == 10    # paper: 10
    assert by_key["concurrent_app_sites"].achieved > 10   # paper: 17
    assert by_key["data_tb_per_day"].achieved >= 2.0      # paper: 4
    assert by_key["peak_concurrent_jobs"].achieved >= 1000  # paper: 1300
    assert by_key["support_fte"].achieved < 2.0     # paper: <2 sustained
    # Efficiency "varies"; the stable-grid figure exceeds the 75% target.
    assert by_key["job_efficiency"].achieved >= 0.70
