"""Figure 3: differential CPU usage (time-averaged CPUs in use) by VO
over the same 30-day SC2003 window as Figure 2.

Paper shape: usage ramps up through the window as SC2003 (Nov 15-21)
approaches; the LHC VOs carry the bulk of the load day by day.
"""

from repro.analysis import figure3_differential_cpu
from repro.sim import DAY

from .conftest import SC2003_WINDOW, SCALE


def test_fig3_differential_cpu(benchmark, reference_viewer):
    t0, t1 = SC2003_WINDOW

    def compute():
        return figure3_differential_cpu(
            reference_viewer, t0, t1, bin_width=DAY, rescale=SCALE
        )

    data, text = benchmark(compute)
    print("\n" + text)

    assert data, "no differential usage in the window"
    # Shape 1: the SC2003 ramp — mean CPUs in the second half of the
    # window exceed the first half (the paper's Nov 15-21 push).
    total_by_day = {}
    for series in data.values():
        for t, cpus in series:
            total_by_day[t] = total_by_day.get(t, 0.0) + cpus
    days = sorted(total_by_day)
    first = sum(total_by_day[d] for d in days[: len(days) // 2])
    second = sum(total_by_day[d] for d in days[len(days) // 2:])
    assert second > first, "usage should ramp toward SC2003"
    # Shape 2: peak daily usage lands in the hundreds of CPUs after
    # rescale (paper's Fig. 3 peaks near 1000 with ~700 daily average
    # later in the run).
    peak = max(total_by_day.values())
    assert peak > 100, f"rescaled peak {peak:.0f} CPUs is implausibly low"
    # Shape 3: USCMS sustains the largest per-day footprint.
    mean_usage = {
        vo: sum(v for _t, v in series) / max(1, len(series))
        for vo, series in data.items()
    }
    assert max(mean_usage, key=mean_usage.get) in ("uscms", "usatlas")
