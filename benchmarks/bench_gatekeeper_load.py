"""§6.4 gatekeeper load characterisation.

Paper text reproduced as assertions:
  * "a typical gatekeeper using a queue manager will experience a
    sustained one minute load of ~225 when managing ~1000 computational
    jobs";
  * "a factor of two can be applied to the sustained load" for minimal
    file staging, "three or four" for substantial staging;
  * "this load can sharply increase when the job submission frequency
    is high".

The bench sweeps managed-job counts and staging classes on a live
gatekeeper and prints the load surface.
"""

import pytest

from repro.core.job import JobSpec
from repro.fabric import Network
from repro.middleware.gram import attach_gatekeeper
from repro.middleware.gsi import Authenticator, CertificateAuthority, GridMapFile
from repro.sim import Engine, HOUR, MINUTE
from repro.analysis import render_table


class _AcceptAllLRM:
    def submit(self, job):
        pass

    def cancel(self, job):
        pass


def build_gatekeeper():
    eng = Engine()
    net = Network(eng)
    from repro.fabric import Site
    site = Site(eng, "GK_Site", "Test U.", "usatlas", nodes=8, cpus_per_node=2,
                disk_capacity=1e12, network=net)
    ca = CertificateAuthority("ca", eng)
    cert = ca.issue("/CN=load-tester")
    proxy = ca.make_proxy(cert, lifetime=365 * 24 * HOUR)
    gridmap = GridMapFile()
    gridmap.add("/CN=load-tester", "grid-usatlas")
    gk = attach_gatekeeper(eng, site, Authenticator(eng, ["ca"], gridmap),
                           overload_threshold=1e12)
    gk.lrm = _AcceptAllLRM()
    return eng, gk, proxy


def measure_load(managed_jobs: int, staging: str) -> float:
    eng, gk, proxy = build_gatekeeper()
    spec = JobSpec(name="load", vo="usatlas", user="load-tester",
                   runtime=HOUR, staging=staging)
    for _ in range(managed_jobs):
        gk.submit(proxy, spec)
    eng.run(until=2 * MINUTE)  # let the submission spike decay
    return gk.load()


def test_gatekeeper_load_surface(benchmark):
    counts = [100, 250, 500, 1000]
    stagings = ["none", "minimal", "heavy"]

    def sweep():
        return {
            (n, s): measure_load(n, s) for n in counts for s in stagings
        }

    surface = benchmark(sweep)

    rows = [
        [n] + [surface[(n, s)] for s in stagings]
        for n in counts
    ]
    print("\n§6.4 gatekeeper load (sustained 1-min load):")
    print(render_table(["managed jobs"] + stagings, rows))

    # ~225 at ~1000 no-staging jobs.
    assert surface[(1000, "none")] == pytest.approx(225.0, rel=0.02)
    # Factor of two for minimal staging.
    assert surface[(1000, "minimal")] == pytest.approx(450.0, rel=0.02)
    # Three to four for heavy staging.
    assert 3 * 225 <= surface[(1000, "heavy")] <= 4 * 225
    # Load is linear in managed jobs.
    assert surface[(500, "none")] == pytest.approx(112.5, rel=0.02)


def test_submission_frequency_spike(benchmark):
    def burst():
        eng, gk, proxy = build_gatekeeper()
        spec = JobSpec(name="burst", vo="usatlas", user="load-tester",
                       runtime=HOUR, staging="none")
        for _ in range(500):
            gk.submit(proxy, spec)
        spiked = gk.load()
        eng.run(until=2 * MINUTE)
        return spiked, gk.load()

    spiked, sustained = benchmark(burst)
    print(f"\nburst of 500 submissions: load {spiked:.0f} spiked vs "
          f"{sustained:.0f} sustained")
    # "This load can sharply increase when the job submission frequency
    # is high" — then decays back to the managed-job baseline.
    assert spiked > 2 * sustained
    assert sustained == pytest.approx(500 * 0.225, rel=0.02)
