"""Simulator performance characterisation (not a paper artefact).

Establishes the event-throughput of the DES kernel and how total run
cost scales with the `scale` knob, so users can budget full-window
runs.  Shape assertions keep the simulator honest: cost must grow
roughly linearly as scale shrinks (more jobs, more events), and the
kernel must sustain a healthy event rate.
"""

import time

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import Engine


def test_kernel_event_throughput(benchmark):
    """Raw engine throughput: timeout-chain events per second."""

    def spin():
        eng = Engine()

        def chain(n):
            for _ in range(n):
                yield eng.timeout(1.0)

        for _ in range(10):
            eng.process(chain(5000))
        eng.run()
        return 50_000

    events = benchmark(spin)
    assert events == 50_000


def test_grid_run_cost_scales(benchmark):
    """A week of full-mix Grid3 at two scales: halving the divisor
    (doubling the workload) should not blow up superlinearly."""

    def run(scale):
        t = time.perf_counter()
        grid = Grid3(Grid3Config(
            seed=3, scale=scale, duration_days=7,
            failures=FailureProfile.calm(),
        ))
        grid.run_full()
        return time.perf_counter() - t, len(grid.acdc_db)

    def both():
        return run(400), run(100)

    (t_small, n_small), (t_big, n_big) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print(f"\nscale 400: {t_small:.2f}s wall, {n_small} records")
    print(f"scale 100: {t_big:.2f}s wall, {n_big} records")
    # 4x the workload produced more records...
    assert n_big > n_small
    # ...at sub-quadratic cost (allow generous slack for fixed overheads
    # and machine noise).
    assert t_big < max(1.0, t_small) * 16
