"""Figure 5: data consumed by Grid3 sites, by responsible VO, over the
30 days around SC2003.

Paper shape: "Nearly 100 TB was transferred during 30 days before and
after SC2003 ... The GridFTP demonstrator accounted for most data
transferred on Grid3", and the §6.3/§7 rate milestones: sustained
2 TB/day, peak 4 TB/day.
"""

from repro.analysis import figure5_data_consumed
from repro.sim import bytes_to_tb

from .conftest import SC2003_WINDOW, SCALE


def test_fig5_data_consumed(benchmark, reference_run, reference_viewer):
    t0, t1 = SC2003_WINDOW

    def compute():
        return figure5_data_consumed(reference_viewer, t0, t1, rescale=SCALE)

    data, text = benchmark(compute)
    print("\n" + text)

    total_tb = data.pop("__total__")
    # Shape 1: tens of TB over the 30-day window (paper: ~100 TB).
    assert 20 <= total_tb <= 300, f"30-day total {total_tb:.1f} TB off-shape"
    # Shape 2: the demonstrator VO (ivdgl carries the GridFTP demo)
    # accounts for most transferred data.
    assert max(data, key=data.get) == "ivdgl"
    assert data["ivdgl"] > 0.5 * sum(data.values())
    # Shape 3: the daily-rate milestone — peak day >= the 2 TB target.
    ledger = reference_run.ledger
    peak_tb = bytes_to_tb(ledger.peak_daily_bytes(t0, t1)) * SCALE
    print(f"\npeak daily transfer (rescaled): {peak_tb:.2f} TB (paper: 4 TB)")
    assert peak_tb >= 2.0, f"peak day {peak_tb:.2f} TB misses the 2 TB target"
