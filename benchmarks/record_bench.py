"""Record a performance snapshot of the three hot paths.

Writes ``BENCH_kernel.json`` (kernel event throughput, 7-day grid wall
time, MetricStore query latency, experiment sweep speedup),
``BENCH_scale.json`` (the 27/200/500-site ladder: events/s, peak RSS,
metrics memory-budget accounting), ``BENCH_transfers.json``
(managed-transfer burst), and ``BENCH_trace.json`` (tracing overhead,
traced vs untraced wall clock, plus a loadable Perfetto sample in
``trace_sample.json``) so future PRs have a trajectory to regress
against.  Run from the repo root:

    PYTHONPATH=src python benchmarks/record_bench.py            # full
    PYTHONPATH=src python benchmarks/record_bench.py --smoke    # CI

``--smoke`` shrinks every workload so the whole script finishes in well
under a minute; the numbers are noisier but the file shape is the same.

The ``baseline`` block holds the seed-commit numbers measured with this
same harness on the same machine (full mode), recorded once when the
fast paths landed, so before/after is visible in one file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Grid3, Grid3Config  # noqa: E402
from repro.failures import FailureProfile  # noqa: E402
from repro.lab.experiment import ExperimentSpec, run_experiment  # noqa: E402
from repro.monitoring.core import MetricSample, MetricStore, make_tags  # noqa: E402
from repro.sim import DAY, Engine, GB  # noqa: E402

#: Seed-commit numbers (full mode, same harness, same machine) recorded
#: when the kernel/store/runner fast paths landed.  Do not edit unless
#: re-measuring the actual seed revision.
BASELINE = {
    "measured_at": "seed commit 800238b, 2026-08-06, 1-core container",
    "kernel": {"events": 50000, "best_ms": 67.57, "events_per_sec": 740005},
    "grid_7day": {"duration_days": 7, "scale400_s": 0.514,
                  "scale400_records": 243, "scale100_s": 0.847,
                  "scale100_records": 953},
    "store": {"samples": 200000, "query_window_us": 10652.0,
              "query_tagged_us": 16714.7, "latest_tagged_us": 2.19},
    "sweep": {"sequential_s": 3.367,
              "note": "seed runner had no workers knob"},
}


def bench_kernel(smoke: bool) -> Dict[str, float]:
    """Timeout-chain throughput: the test_kernel_event_throughput shape."""
    chains, length = (10, 500) if smoke else (10, 5000)
    total = chains * length
    best = float("inf")
    for _ in range(3 if smoke else 5):
        eng = Engine()

        def chain(n, eng=eng):
            for _ in range(n):
                yield eng.timeout(1.0)

        for _ in range(chains):
            eng.process(chain(length))
        t0 = time.perf_counter()
        eng.run()
        best = min(best, time.perf_counter() - t0)
    return {
        "events": total,
        "best_ms": round(best * 1e3, 2),
        "events_per_sec": round(total / best),
    }


def bench_grid(smoke: bool) -> Dict[str, float]:
    """Full-mix Grid3 wall time at the two bench scales."""
    days = 2 if smoke else 7
    out: Dict[str, float] = {"duration_days": days}
    for scale in (400, 100):
        t0 = time.perf_counter()
        grid = Grid3(Grid3Config(
            seed=3, scale=scale, duration_days=days,
            failures=FailureProfile.calm(),
        ))
        grid.run_full()
        out[f"scale{scale}_s"] = round(time.perf_counter() - t0, 3)
        out[f"scale{scale}_records"] = len(grid.acdc_db)
    return out


def bench_store(smoke: bool) -> Dict[str, float]:
    """Query/latest latency on a populated multi-site store."""
    n = 20_000 if smoke else 200_000
    sites = [f"Site{i}" for i in range(8)]
    store = MetricStore()
    for i in range(n):
        store.append(MetricSample(
            float(i), "cpu.busy", float(i % 97),
            make_tags(site=sites[i % len(sites)]),
        ))
    reps = 50 if smoke else 200
    lo, hi = n * 0.45, n * 0.55

    t0 = time.perf_counter()
    for _ in range(reps):
        got = store.query("cpu.busy", since=lo, until=hi)
    window_us = (time.perf_counter() - t0) / reps * 1e6
    assert got

    t0 = time.perf_counter()
    for _ in range(reps):
        got = store.query("cpu.busy", since=lo, until=hi, site="Site3")
    tagged_us = (time.perf_counter() - t0) / reps * 1e6
    assert got

    t0 = time.perf_counter()
    for _ in range(reps):
        latest = store.latest("cpu.busy", site="Site5")
    latest_us = (time.perf_counter() - t0) / reps * 1e6
    assert latest is not None

    return {
        "samples": n,
        "query_window_us": round(window_us, 1),
        "query_tagged_us": round(tagged_us, 1),
        "latest_tagged_us": round(latest_us, 2),
    }


def _metric_success(grid: Grid3) -> float:
    return grid.acdc_db.success_rate()


def _metric_cpu_days(grid: Grid3) -> float:
    return grid.acdc_db.total_cpu_days()


def bench_sweep(smoke: bool) -> Dict[str, object]:
    """Sequential vs parallel run_experiment on a small spec."""
    spec = ExperimentSpec(
        name="bench-sweep",
        base=dict(scale=600 if smoke else 200, duration_days=1 if smoke else 2),
        variants={"calm": {}, "noisy": dict(failures=FailureProfile.early()),
                  "wide": dict(scale=400 if smoke else 150)},
        metrics={"success": _metric_success, "cpu_days": _metric_cpu_days},
        repeats=1 if smoke else 3,
    )
    t0 = time.perf_counter()
    try:
        seq = run_experiment(spec, workers=1)
    except TypeError:  # pre-workers runner (seed baseline re-measurement)
        seq = run_experiment(spec)
    t_seq = time.perf_counter() - t0

    workers = min(4, os.cpu_count() or 1)
    if workers <= 1:
        # Both arms would run the same sequential path; recording their
        # wall-clock ratio is pure scheduler noise on a 1-core box.
        return {
            "cells": len(spec.variants) * spec.repeats,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "sequential_s": round(t_seq, 3),
            "note": "single-core box: workers clamp to 1; "
                    "see BENCH_sweep.json for the gated sweep",
        }
    t0 = time.perf_counter()
    try:
        par = run_experiment(spec, workers=workers)
    except TypeError:  # pre-workers runner (seed baseline re-measurement)
        return {"sequential_s": round(t_seq, 3), "workers2_s": None,
                "note": "runner has no workers knob"}
    t_par = time.perf_counter() - t0
    identical = seq == par
    return {
        "cells": len(spec.variants) * spec.repeats,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "sequential_s": round(t_seq, 3),
        "parallel_s": round(t_par, 3),
        "speedup": round(t_seq / t_par, 2) if t_par else None,
        "identical_results": identical,
    }


def bench_worker_sweep(smoke: bool) -> Dict[str, object]:
    """Worker-count sweep for ``BENCH_sweep.json``.

    Runs the same spec at workers=1 (the reference), then at each count
    in {2, N} that fits the core budget (N = available cores), recording
    wall time, speedup, and an ``identical_results`` flag per count.
    The pool is warmed before each timed fan-out so the numbers measure
    steady-state dispatch, not one-time worker spawn (which the
    persistent pool amortizes across sweeps anyway).  On a single-core
    box there is nothing to fan out to; only the sequential arm is
    recorded, with a note.
    """
    from repro.lab.experiment import _available_cores, _get_pool

    spec = ExperimentSpec(
        name="worker-sweep",
        base=dict(scale=500 if smoke else 200,
                  duration_days=1 if smoke else 2),
        variants={"calm": {}, "noisy": dict(failures=FailureProfile.early()),
                  "wide": dict(scale=350 if smoke else 150)},
        metrics={"success": _metric_success, "cpu_days": _metric_cpu_days},
        repeats=2 if smoke else 3,
    )
    cores = _available_cores()
    t0 = time.perf_counter()
    ref = run_experiment(spec, workers=1)
    sequential_s = time.perf_counter() - t0

    counts = sorted({n for n in (2, cores) if 1 < n <= cores})
    runs = []
    for n in counts:
        _get_pool(n)  # warm the persistent pool outside the timed region
        t0 = time.perf_counter()
        par = run_experiment(spec, workers=n)
        parallel_s = time.perf_counter() - t0
        runs.append({
            "workers": n,
            "parallel_s": round(parallel_s, 3),
            "speedup": round(sequential_s / parallel_s, 2) if parallel_s else None,
            "identical_results": par == ref,
        })
    return {
        "cells": len(spec.variants) * spec.repeats,
        "cores": cores,
        "sequential_s": round(sequential_s, 3),
        "runs": runs,
        "note": ("single-core budget: workers clamp to 1, nothing to sweep"
                 if not runs else
                 "pool warmed before each timed arm (steady-state dispatch)"),
    }


def bench_scale(smoke: bool) -> Dict[str, object]:
    """The 27-vs-N-site ladder for ``BENCH_scale.json``.

    Runs the same traced-free workload on the paper catalog and on
    synthetic fabrics, recording wall time, kernel events/s (the
    engine's dispatch counter over wall clock), process peak RSS
    (``ru_maxrss`` — no psutil in the container), and the metrics
    memory-governor accounting.  ``budget_respected`` is the CI gate:
    the governor's peak live bytes must stay at or under the budget.
    """
    import resource

    days = 1 if smoke else 2
    ladder = (27, 100, 200) if smoke else (27, 200, 500)
    budget_mb = 16.0 if smoke else 64.0
    rows = []
    for sites in ladder:
        fabric = None if sites == 27 else {"sites": sites}
        t0 = time.perf_counter()
        grid = Grid3(Grid3Config(
            seed=11, scale=400, duration_days=days,
            fabric=fabric,
            metrics_memory_budget_mb=budget_mb,
            apps=["usatlas", "ivdgl", "exerciser"],
            failures=FailureProfile.calm(),
        ))
        grid.run_full()
        wall = time.perf_counter() - t0
        gov = grid.governor.report()
        rows.append({
            "sites": len(grid.sites),
            "total_cpus": grid.total_cpus(),
            "wall_s": round(wall, 3),
            "events": grid.engine.dispatched,
            "events_per_sec": round(grid.engine.dispatched / wall) if wall else None,
            "records": len(grid.acdc_db),
            "peak_rss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
            ),
            "metrics_budget_mb": budget_mb,
            "metrics_peak_bytes": int(gov["peak_bytes"]),
            "metrics_current_bytes": int(gov["current_bytes"]),
            "metrics_evicted_samples": int(gov["evicted_samples"]),
            "governed_stores": int(gov["stores"]),
            "budget_respected": bool(gov["peak_bytes"] <= gov["budget_bytes"]),
        })
        print(f"  scale ladder {sites} sites: {rows[-1]}", flush=True)
    return {"duration_days": days, "ladder": rows}


def bench_transfers(smoke: bool) -> Dict[str, object]:
    """Managed-transfer throughput benchmark: N concurrent
    TransferManager tickets fanning out from the Tier1 sources across
    the whole 27-site catalog, SRM-free, failure-free — measures the
    queueing/selection/network machinery itself."""
    per_site = 2 if smoke else 15
    grid = Grid3(Grid3Config(
        seed=11, scale=400, duration_days=30.0,
        failures=FailureProfile.disabled(),
        misconfig_probability=0.0,
        ops_team=False, local_load=False,
        data_management=True,
    ))
    grid.deploy()
    sources = ["BNL_ATLAS", "FNAL_CMS"]
    dsts = sorted(grid.sites)
    n = per_site * len(dsts)
    size = 1 * GB
    for i in range(n):
        lfn = f"/bench/burst/{i:05d}"
        src = sources[i % len(sources)]
        if lfn not in grid.sites[src].storage:
            grid.sites[src].storage.store(lfn, size)
        grid.rls.register(src, lfn, size)

    t0 = time.perf_counter()
    tickets = [
        grid.data.transfers.submit(
            f"/bench/burst/{i:05d}", size, dsts[i % len(dsts)], vo="bench",
        )
        for i in range(n)
    ]
    # Step only until the queues drain — the horizon is just a backstop.
    while grid.data.transfers.outstanding() and grid.engine.now < 30 * DAY:
        if not grid.engine.step():
            break
    wall = time.perf_counter() - t0
    done = sum(1 for t in tickets if t.ok)
    return {
        "transfers": n,
        "sites": len(dsts),
        "completed": done,
        "failed": n - done,
        "bytes_moved_gb": round(grid.data.transfers.bytes_moved / GB, 1),
        "sim_hours": round(grid.engine.now / 3600.0, 2),
        "wall_s": round(wall, 3),
        "transfers_per_wall_s": round(n / wall) if wall else None,
    }


def bench_trace(smoke: bool) -> Dict[str, object]:
    """Tracing overhead: identical same-seed runs with tracing off/on.

    The determinism contract says spans are passive (no events, no RNG),
    so the only cost is span-object bookkeeping; the issue budget is
    <= 10% wall-clock overhead on the standard scenario.  Best-of-N
    per arm to shave scheduler noise; a sample Perfetto export rides
    along so the artifact is loadable straight from CI.
    """
    # Smoke runs are ~0.35s, deep in scheduler-noise territory: interleave
    # the arms and take best-of-N so a noise spike can only slow an arm,
    # never flatter it.
    days = 2 if smoke else 7
    reps = 5 if smoke else 3

    def run(tracing: bool):
        t0 = time.perf_counter()
        grid = Grid3(Grid3Config(
            seed=3, scale=400, duration_days=days,
            failures=FailureProfile.calm(), tracing=tracing,
        ))
        grid.run_full()
        return time.perf_counter() - t0, grid

    run(tracing=True)   # warm-up: pay the one-time trace-package import
    run(tracing=False)  # ...and level caches across both arms
    untraced = traced = float("inf")
    grid = None
    for _ in range(reps):
        t, _g = run(tracing=False)
        untraced = min(untraced, t)
        t, grid = run(tracing=True)
        traced = min(traced, t)
    store = grid.tracer.store
    return {
        "duration_days": days,
        "reps": reps,
        "untraced_s": round(untraced, 3),
        "traced_s": round(traced, 3),
        "overhead_pct": round((traced / untraced - 1.0) * 100, 1),
        "traces": len(store),
        "spans": store.span_count(),
        "_grid": grid,  # stripped before writing; reused for the export
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads (CI smoke job)")
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="output path (default: BENCH_kernel.json)")
    parser.add_argument("--transfers-out", default="BENCH_transfers.json",
                        help="transfer-benchmark output path")
    parser.add_argument("--trace-out", default="BENCH_trace.json",
                        help="tracing-overhead output path")
    parser.add_argument("--perfetto-out", default="trace_sample.json",
                        help="sample Perfetto trace from the traced arm")
    parser.add_argument("--sweep-out", default="BENCH_sweep.json",
                        help="worker-count sweep output path")
    parser.add_argument("--scale-bench-out", default="BENCH_scale.json",
                        help="site-count scale ladder output path")
    args = parser.parse_args()

    current = {}
    for label, fn in (("kernel", bench_kernel), ("grid_7day", bench_grid),
                      ("store", bench_store), ("sweep", bench_sweep)):
        t0 = time.perf_counter()
        current[label] = fn(args.smoke)
        print(f"{label}: {current[label]} ({time.perf_counter() - t0:.1f}s)",
              flush=True)

    snapshot = {
        "generated_by": "benchmarks/record_bench.py",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "baseline": BASELINE,
        "current": current,
    }
    with open(args.out, "w") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    t0 = time.perf_counter()
    worker_sweep = bench_worker_sweep(args.smoke)
    print(f"worker_sweep: {worker_sweep} ({time.perf_counter() - t0:.1f}s)",
          flush=True)
    with open(args.sweep_out, "w") as fh:
        json.dump({
            "generated_by": "benchmarks/record_bench.py",
            "mode": "smoke" if args.smoke else "full",
            "python": sys.version.split()[0],
            "current": worker_sweep,
        }, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.sweep_out}")

    t0 = time.perf_counter()
    scale = bench_scale(args.smoke)
    print(f"scale: {len(scale['ladder'])} ladder rungs "
          f"({time.perf_counter() - t0:.1f}s)", flush=True)
    with open(args.scale_bench_out, "w") as fh:
        json.dump({
            "generated_by": "benchmarks/record_bench.py",
            "mode": "smoke" if args.smoke else "full",
            "python": sys.version.split()[0],
            "current": scale,
        }, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.scale_bench_out}")

    t0 = time.perf_counter()
    transfers = bench_transfers(args.smoke)
    print(f"transfers: {transfers} ({time.perf_counter() - t0:.1f}s)",
          flush=True)
    with open(args.transfers_out, "w") as fh:
        json.dump({
            "generated_by": "benchmarks/record_bench.py",
            "mode": "smoke" if args.smoke else "full",
            "python": sys.version.split()[0],
            "current": transfers,
        }, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.transfers_out}")

    t0 = time.perf_counter()
    trace = bench_trace(args.smoke)
    traced_grid = trace.pop("_grid")
    print(f"trace: {trace} ({time.perf_counter() - t0:.1f}s)", flush=True)
    with open(args.trace_out, "w") as fh:
        json.dump({
            "generated_by": "benchmarks/record_bench.py",
            "mode": "smoke" if args.smoke else "full",
            "python": sys.version.split()[0],
            "budget_overhead_pct": 10.0,
            "current": trace,
        }, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.trace_out}")

    from repro.trace import write_chrome_trace  # noqa: E402
    n_events = write_chrome_trace(
        traced_grid.tracer.store, args.perfetto_out,
        clip_open_at=traced_grid.engine.now,
    )
    print(f"wrote {n_events} trace events to {args.perfetto_out} "
          f"(load in ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
