"""Fair-share scheduling smoke bench: contention with vs without the
policy layer, at the contention scenario's pinned seed.

Runs the multi-VO contention scenario twice (same seed, fair-share off
then on), times both, checks the §5/§7 shape claims — fair-share lowers
the max/min per-VO completion ratio, share caps hold, policy rejections
happen — and writes ``BENCH_fairshare.json`` so CI keeps a trajectory
of both the wall time and the fairness effect.
"""

import json
import pathlib
from collections import Counter

from repro import Grid3, SCENARIOS

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fairshare.json"


def run_variant(fair_share: bool):
    grid = Grid3(SCENARIOS["contention"](seed=42, fair_share=fair_share))
    grid.run_full()
    done = Counter(r.vo for r in grid.acdc_db.records() if r.succeeded)
    ratio = max(done.values()) / max(1, min(done.values())) if done else 0.0
    out = {
        "completed_by_vo": dict(sorted(done.items())),
        "maxmin_ratio": round(ratio, 3),
        "records": len(grid.acdc_db),
    }
    if fair_share:
        out["policy_rejections"] = sum(r.count for r in grid.policy_report())
        out["cap_violations"] = len(grid.policy_engine.cap_violations())
        out["sched_usage_samples"] = len(
            grid.monitors["sched"].query("sched.fairshare.usage")
        )
    return out


def test_fairshare_contention_smoke(benchmark):
    results = {}

    def both():
        results["off"] = run_variant(False)
        results["on"] = run_variant(True)
        return results

    benchmark.pedantic(both, rounds=1, iterations=1)
    off, on = results["off"], results["on"]
    print(f"\nfair-share off: {off}")
    print(f"fair-share on:  {on}")

    # Shape claims the scenario exists to demonstrate.
    assert on["maxmin_ratio"] < off["maxmin_ratio"]
    assert on["cap_violations"] == 0
    assert on["sched_usage_samples"] > 0

    stats = benchmark.stats.stats
    OUT.write_text(json.dumps({
        "bench": "fairshare_contention",
        "scenario": "contention",
        "seed": 42,
        "wall_seconds_both_runs": round(stats.mean, 3),
        "off": off,
        "on": on,
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT.name}")
