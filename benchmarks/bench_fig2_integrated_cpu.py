"""Figure 2: integrated CPU usage (CPU-days) by VO, 30 days from
2003-10-25.

Paper shape: both LHC experiments ran production at scale during the
SC2003 window; USCMS and USATLAS dominate the integrated CPU-days, with
the other VOs contributing smaller shares.
"""

from repro.analysis import figure2_integrated_cpu

from .conftest import SC2003_WINDOW, SCALE


def test_fig2_integrated_cpu(benchmark, reference_viewer):
    t0, t1 = SC2003_WINDOW

    def compute():
        return figure2_integrated_cpu(reference_viewer, t0, t1, rescale=SCALE)

    data, text = benchmark(compute)
    print("\n" + text)

    # Shape: the LHC VOs dominate integrated CPU in the SC2003 window.
    assert data, "no CPU consumed in the window"
    lhc = data.get("uscms", 0) + data.get("usatlas", 0)
    total = sum(data.values())
    assert lhc > 0.5 * total, (
        f"LHC experiments should dominate Fig. 2 (got {lhc:.0f}/{total:.0f})"
    )
    # USCMS is the single largest consumer (paper: 33 750 of ~41 000
    # total CPU-days across the whole window).
    assert max(data, key=data.get) == "uscms"
    # Multiple VOs ran concurrently on shared resources.
    assert len(data) >= 4
