"""Figure 6: distribution of jobs run on Grid3 by month, October 2003
through April 2004.

Paper shape: "the obvious ramp up of computational production jobs
appears in 2003 and a more sustained production rate appears in 2004"
— October is the smallest month, November 2003 spikes (SC2003), and
the 2004 months hold a sustained plateau.
"""

from repro.analysis import figure6_jobs_by_month

from .conftest import SCALE


def test_fig6_jobs_by_month(benchmark, reference_viewer):
    def compute():
        return figure6_jobs_by_month(reference_viewer, rescale=SCALE)

    data, text = benchmark(compute)
    print("\n" + text)

    months = list(data)
    # The window covers Oct 2003 .. Apr 2004.
    assert months[0] == "10-2003"
    assert "04-2004" in months
    # Shape 1: the 2003 ramp — October (a partial month plus spin-up)
    # is smaller than November.
    assert data["10-2003"] < data["11-2003"]
    # Shape 2: sustained 2004 production — every full 2004 month stays
    # within a factor of ~3 of the 2004 mean (a plateau, not decay to
    # zero).
    y2004 = [v for m, v in data.items() if m.endswith("2004")]
    assert len(y2004) >= 3
    mean_2004 = sum(y2004) / len(y2004)
    assert all(v > mean_2004 / 3 for v in y2004), "2004 production not sustained"
    # Shape 3: total job count lands near Table 1's 291k after rescale
    # (within a factor of ~2: scaled runs lose some of the tails).
    total = sum(data.values())
    print(f"\ntotal jobs (rescaled): {total:,.0f} (paper: 291,052)")
    assert 291_052 / 2.5 <= total <= 291_052 * 2.5
