"""Grid-as-a-service smoke bench: latency, cache amplification, fairness.

Two benchmarks share ``BENCH_service.json`` (each merges its section
into the file, so CI keeps one trajectory):

* the smoke round-trip — boots the service on an ephemeral port with
  one real worker process, times (a) a cold submit -> poll -> report
  round-trip (one full simulation behind it) and (b) a burst of
  identical resubmissions that must all be answered from the result
  cache without running anything;
* the admission-fairness contention trial — three clients (one greedy,
  two light) race 50 runs through a single worker under FIFO and under
  fair-share dispatch; records each mode's max/min completed-runs ratio
  inside a fixed completion window and each client's p95 queue wait,
  and proves a quota breach never blocks another client's lane.  CI
  gates on ``fair_ratio < fifo_ratio``.
"""

import json
import pathlib
import statistics
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro import ReproService, ServiceApp

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"

CONFIG = {"scale": 3000, "duration_days": 0.05, "apps": ["exerciser"],
          "tracing": True, "seed": 7}
HOT_REQUESTS = 50


def http(method, url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def cold_round_trip(base):
    """Submit a new config, poll to done, fetch one report page."""
    start = time.perf_counter()
    _status, submitted = http("POST", f"{base}/runs", {"config": CONFIG})
    run_id = submitted["run_id"]
    while True:
        _status, view = http("GET", f"{base}/runs/{run_id}")
        if view["state"] in ("done", "failed"):
            break
        time.sleep(0.02)
    assert view["state"] == "done", view
    http("GET", f"{base}/runs/{run_id}/report/ops?limit=50")
    return time.perf_counter() - start


def hot_burst(base):
    """Identical resubmissions: every one must be a cache hit."""
    start = time.perf_counter()
    for _ in range(HOT_REQUESTS):
        status, answer = http("POST", f"{base}/runs", {"config": CONFIG})
        assert status == 200 and answer["dedup"] == "cached", answer
    return time.perf_counter() - start


def test_service_round_trip_smoke(benchmark):
    service = ReproService(port=0, workers=1, queue_depth=8).start()
    results = {}
    try:
        base = service.url

        def flow():
            results["cold_s"] = cold_round_trip(base)
            results["hot_burst_s"] = hot_burst(base)
            return results

        benchmark.pedantic(flow, rounds=1, iterations=1)
        _status, gauges = http("GET", f"{base}/metrics?format=json")
    finally:
        service.close(drain=True, timeout=60.0)

    # The service's reason to exist: one simulation, many answers.
    assert gauges["service.queue.executed"] == 1
    assert gauges["service.cache.hits"] >= HOT_REQUESTS

    cold = results["cold_s"]
    hot_each = results["hot_burst_s"] / HOT_REQUESTS
    print(f"\ncold submit->report round-trip: {cold * 1e3:.1f} ms")
    print(f"cached submit (x{HOT_REQUESTS} avg): {hot_each * 1e3:.2f} ms")

    _merge_out({
        "bench": "service_round_trip",
        "config": CONFIG,
        "cold_round_trip_s": round(cold, 4),
        "hot_requests": HOT_REQUESTS,
        "hot_request_mean_s": round(hot_each, 6),
        "cache_speedup": round(cold / max(hot_each, 1e-9), 1),
        "simulations_executed": gauges["service.queue.executed"],
        "cache_hits": gauges["service.cache.hits"],
    })
    print(f"wrote {OUT.name}")


def _merge_out(update):
    """Merge one bench's keys into BENCH_service.json (both benches in
    this file share the output; neither may clobber the other)."""
    data = {}
    if OUT.exists():
        try:
            data = json.loads(OUT.read_text())
        except ValueError:
            data = {}
    data.update(update)
    OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# -- admission fairness under contention --------------------------------------

#: Per-run stub duration: long enough that dispatch order dominates the
#: outcome, short enough that two full 50-run trials stay under ~3 s.
RUN_S = 0.02
GREEDY_RUNS = 30
LIGHT_RUNS = 10
#: Completed-run window the max/min ratio is read at: enough for FIFO
#: to expose the starvation, well under the total so fairness can show.
WINDOW = 20


def _stub_payload(seed):
    return {"reports": {"ops": [], "troubleshooting": [], "trace": []},
            "summary": {"seed": seed}}


def _submit(app, seed, client):
    status, body = app.handle(
        "POST", "/v1/runs", {},
        json.dumps({"config": {"seed": seed}, "client": client}).encode())
    assert status == 202, body
    return json.loads(body)["run_id"]


def _contention_trial(fair):
    """One 3-client race through a single worker; returns the window
    completion counts and per-client p95 queue wait."""
    gate = threading.Event()

    def runner(config):
        if config.seed == 999999:   # the blocker occupying the worker
            gate.wait(30.0)
        else:
            time.sleep(RUN_S)
        return _stub_payload(config.seed)

    app = ServiceApp(
        workers=1, queue_depth=256, cache_bytes=1024 * 1024,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=runner,
    )
    if not fair:
        app.queue.admission = None  # strict FIFO baseline
    owners = {}
    try:
        _submit(app, 999999, "warmup")  # holds the worker while we queue
        time.sleep(0.05)
        # The greedy client floods first; the light clients arrive after.
        for i in range(GREEDY_RUNS):
            owners[_submit(app, 1000 + i, "greedy")] = "greedy"
        for i in range(LIGHT_RUNS):
            owners[_submit(app, 2000 + i, "light-a")] = "light-a"
        for i in range(LIGHT_RUNS):
            owners[_submit(app, 3000 + i, "light-b")] = "light-b"
        gate.set()
        # Read the score when WINDOW contended runs have completed.
        deadline = time.monotonic() + 60.0
        while True:
            done = [r for r in app.store.runs()
                    if r.state == "done" and r.run_id in owners]
            if len(done) >= WINDOW:
                break
            assert time.monotonic() < deadline, "contention trial stalled"
            time.sleep(0.005)
        window_counts = {"greedy": 0, "light-a": 0, "light-b": 0}
        for record in done[:WINDOW]:
            window_counts[owners[record.run_id]] += 1
        assert app.queue.drain(timeout=60.0)
        waits = {"greedy": [], "light-a": [], "light-b": []}
        for run_id, owner in owners.items():
            record = app.store.get(run_id)
            waits[owner].append(record.started_at - record.submitted_at)
        p95 = {
            owner: round(statistics.quantiles(vals, n=20)[-1], 4)
            for owner, vals in waits.items()
        }
    finally:
        gate.set()
        app.close(drain=True, timeout=30.0)
    ratio = max(window_counts.values()) / max(1, min(window_counts.values()))
    return {"window_counts": window_counts, "ratio": round(ratio, 2),
            "p95_wait_s": p95}


def _quota_isolation_check():
    """A greedy client at quota gets 429; another client still gets 202."""
    gate = threading.Event()

    def runner(config):
        gate.wait(30.0)
        return _stub_payload(config.seed)

    app = ServiceApp(
        workers=1, queue_depth=64, cache_bytes=1024 * 1024,
        pool_factory=lambda n: ThreadPoolExecutor(max_workers=n),
        runner=runner, quota_per_client=2,
    )
    try:
        body = lambda seed, client: json.dumps(  # noqa: E731
            {"config": {"seed": seed}, "client": client}).encode()
        assert app.respond("POST", "/v1/runs", {}, body(1, "greedy"))[0] == 202
        assert app.respond("POST", "/v1/runs", {}, body(2, "greedy"))[0] == 202
        status, payload, headers = app.respond(
            "POST", "/v1/runs", {}, body(3, "greedy"))
        breach_seen = (
            status == 429
            and json.loads(payload)["error"]["code"] == "quota_exceeded"
            and int(dict(headers)["Retry-After"]) >= 1
        )
        other_unblocked = app.respond(
            "POST", "/v1/runs", {}, body(4, "light"))[0] == 202
    finally:
        gate.set()
        app.close(drain=True, timeout=30.0)
    return breach_seen, other_unblocked


def test_admission_fairness_benchmark(benchmark):
    results = {}

    def trial():
        results["fifo"] = _contention_trial(fair=False)
        results["fair"] = _contention_trial(fair=True)
        return results

    benchmark.pedantic(trial, rounds=1, iterations=1)
    breach_seen, other_unblocked = _quota_isolation_check()

    fifo, fair = results["fifo"], results["fair"]
    print(f"\nFIFO window counts: {fifo['window_counts']} "
          f"(max/min ratio {fifo['ratio']})")
    print(f"fair window counts: {fair['window_counts']} "
          f"(max/min ratio {fair['ratio']})")
    print(f"p95 wait FIFO: {fifo['p95_wait_s']}")
    print(f"p95 wait fair: {fair['p95_wait_s']}")

    # The acceptance criterion: fair-share is strictly fairer than FIFO
    # inside the contention window, and quotas isolate per client.
    assert fair["ratio"] < fifo["ratio"], (fair, fifo)
    assert breach_seen and other_unblocked

    _merge_out({"admission": {
        "bench": "admission_fairness",
        "clients": {"greedy": GREEDY_RUNS, "light-a": LIGHT_RUNS,
                    "light-b": LIGHT_RUNS},
        "run_stub_s": RUN_S,
        "window": WINDOW,
        "fifo_ratio": fifo["ratio"],
        "fair_ratio": fair["ratio"],
        "fifo_window_counts": fifo["window_counts"],
        "fair_window_counts": fair["window_counts"],
        "fifo_p95_wait_s": fifo["p95_wait_s"],
        "fair_p95_wait_s": fair["p95_wait_s"],
        "quota_breach_seen": breach_seen,
        "quota_isolated": other_unblocked,
    }})
    print(f"merged admission fairness into {OUT.name}")
