"""Grid-as-a-service smoke bench: submit -> result latency and cache-hit
throughput over real HTTP.

Boots the service on an ephemeral port with one real worker process,
times (a) a cold submit -> poll -> report round-trip (one full
simulation behind it) and (b) a burst of identical resubmissions that
must all be answered from the result cache without running anything.
Writes ``BENCH_service.json`` so CI keeps a trajectory of both numbers
and of the cache-hit amplification ratio.
"""

import json
import pathlib
import time
import urllib.request

from repro import ReproService

OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"

CONFIG = {"scale": 3000, "duration_days": 0.05, "apps": ["exerciser"],
          "tracing": True, "seed": 7}
HOT_REQUESTS = 50


def http(method, url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def cold_round_trip(base):
    """Submit a new config, poll to done, fetch one report page."""
    start = time.perf_counter()
    _status, submitted = http("POST", f"{base}/runs", {"config": CONFIG})
    run_id = submitted["run_id"]
    while True:
        _status, view = http("GET", f"{base}/runs/{run_id}")
        if view["state"] in ("done", "failed"):
            break
        time.sleep(0.02)
    assert view["state"] == "done", view
    http("GET", f"{base}/runs/{run_id}/report/ops?limit=50")
    return time.perf_counter() - start


def hot_burst(base):
    """Identical resubmissions: every one must be a cache hit."""
    start = time.perf_counter()
    for _ in range(HOT_REQUESTS):
        status, answer = http("POST", f"{base}/runs", {"config": CONFIG})
        assert status == 200 and answer["dedup"] == "cached", answer
    return time.perf_counter() - start


def test_service_round_trip_smoke(benchmark):
    service = ReproService(port=0, workers=1, queue_depth=8).start()
    results = {}
    try:
        base = service.url

        def flow():
            results["cold_s"] = cold_round_trip(base)
            results["hot_burst_s"] = hot_burst(base)
            return results

        benchmark.pedantic(flow, rounds=1, iterations=1)
        _status, gauges = http("GET", f"{base}/metrics?format=json")
    finally:
        service.close(drain=True, timeout=60.0)

    # The service's reason to exist: one simulation, many answers.
    assert gauges["service.queue.executed"] == 1
    assert gauges["service.cache.hits"] >= HOT_REQUESTS

    cold = results["cold_s"]
    hot_each = results["hot_burst_s"] / HOT_REQUESTS
    print(f"\ncold submit->report round-trip: {cold * 1e3:.1f} ms")
    print(f"cached submit (x{HOT_REQUESTS} avg): {hot_each * 1e3:.2f} ms")

    OUT.write_text(json.dumps({
        "bench": "service_round_trip",
        "config": CONFIG,
        "cold_round_trip_s": round(cold, 4),
        "hot_requests": HOT_REQUESTS,
        "hot_request_mean_s": round(hot_each, 6),
        "cache_speedup": round(cold / max(hot_each, 1e-9), 1),
        "simulations_executed": gauges["service.queue.executed"],
        "cache_hits": gauges["service.cache.hits"],
    }, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT.name}")
