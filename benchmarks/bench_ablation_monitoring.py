"""Ablation: monitoring-path redundancy (§5.2).

Paper: "The Grid3 monitoring and analysis system allows similar
information to be collected by different paths.  This redundancy might
appear unnecessary, but we have found that it has the advantage of
permitting crosschecks on the data collected."

The bench (a) cross-checks CPU consumption measured independently by
the ACDC job-record path and by the MonALISA VO-activity-sensor path,
and (b) disables the MonALISA path mid-run and shows the grid stays
observable through the others — which it would not be with a single
collection path.
"""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import DAY, HOUR


def run_grid():
    grid = Grid3(Grid3Config(
        seed=88, scale=300, duration_days=20,
        apps=["ivdgl", "exerciser", "btev"],
        failures=FailureProfile.disabled(),
        misconfig_probability=0.0,
    ))
    grid.deploy()
    grid.start_applications()
    grid.run(days=12)
    # Kill the MonALISA path for the remainder (agents stop collecting).
    for site in grid.sites.values():
        agent = site.services.get("monalisa")
        if agent is not None:
            agent.producer.enabled = False
    grid.run()
    grid.monitors["acdc"].poll_once()
    return grid


def test_monitoring_redundancy(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    viewer = grid.viewer()
    t_kill = 12 * DAY

    # (a) Cross-check while both paths were alive: CPU-seconds per the
    # ACDC job records vs the integral of MonALISA's hourly
    # vo.cpus_in_use samples.
    acdc_cpu_hours = sum(
        max(0.0, min(r.finished_at, t_kill) - max(r.started_at, 0.0))
        for r in grid.acdc_db.records()
        if r.started_at >= 0 and r.started_at < t_kill
    ) / HOUR
    repo = grid.monitors["monalisa"]
    monalisa_cpu_hours = 0.0
    for series in repo.series_matching("vo.cpus_in_use").values():
        monalisa_cpu_hours += sum(v for t, v in series if t < t_kill)

    print(f"\ncross-check (first 12 d): ACDC {acdc_cpu_hours:.0f} cpu-h vs "
          f"MonALISA {monalisa_cpu_hours:.0f} cpu-h")
    assert acdc_cpu_hours > 0 and monalisa_cpu_hours > 0
    # Sampled-integral vs exact-record agreement within a factor of 2
    # (hourly point sampling of short jobs undercounts; that is exactly
    # why Grid3 kept both paths).
    ratio = monalisa_cpu_hours / acdc_cpu_hours
    print(f"path agreement ratio: {ratio:.2f}")
    assert 0.3 <= ratio <= 3.0

    # (b) After the MonALISA path died, it went blind...
    post_kill_samples = sum(
        sum(1 for t, _v in series if t > t_kill + HOUR)
        for series in repo.series_matching("vo.cpus_in_use").values()
    )
    assert post_kill_samples == 0
    # ...but the grid stayed observable: ACDC kept harvesting records
    # and Ganglia kept answering.
    post_kill_records = [
        r for r in grid.acdc_db.records() if r.finished_at > t_kill + HOUR
    ]
    assert post_kill_records, "ACDC path lost with MonALISA — no redundancy"
    ganglia = grid.monitors["ganglia"]
    fresh = [
        s for s in grid.sites
        if ganglia.latest(s, "cpu.total") is not None
    ]
    assert len(fresh) == 27
    print(f"after MonALISA death: ACDC still harvested "
          f"{len(post_kill_records)} records; Ganglia fresh at {len(fresh)}/27 sites")
