"""Figure 4: CMS cumulative Grid3 usage (CPU-days) by site over the 150
days beginning November 2003.

Paper shape: "U.S. CMS has used Grid3 resources on 11 sites"; usage is
spread across roughly a dozen sites with the Tier1 (FNAL) and the
dedicated CMS facilities carrying large shares, and no single site
holding a majority (Table 1: max single resource 48.4 % at peak).
"""

from repro.analysis import figure4_cms_by_site

from .conftest import CMS_WINDOW, SCALE


def test_fig4_cms_usage_by_site(benchmark, reference_viewer):
    t0, t1 = CMS_WINDOW

    def compute():
        return figure4_cms_by_site(
            reference_viewer, t0, t1, vo="uscms", rescale=SCALE
        )

    data, text = benchmark(compute)
    print("\n" + text)

    assert data, "CMS consumed no CPU in the Fig. 4 window"
    # Shape 1: CMS production ran on a handful-to-a-dozen validated
    # sites (paper: 11; scaled runs lose the thinnest tails).
    assert len(data) >= 3, f"CMS used only {len(data)} sites"
    # Shape 2: the heaviest site is a CMS-owned resource (FNAL Tier1 or
    # a dedicated CMS facility) — VO affinity at work.
    cms_sites = {"FNAL_CMS", "CalTech_PG", "CalTech_Grid3", "UFL_Grid3",
                 "UFL_HPC", "UCSD_PG", "KNU_Grid3"}
    top = max(data, key=data.get)
    assert top in cms_sites, f"top CMS site {top} is not a CMS facility"
    # Shape 3: total CMS CPU-days dominate the grid (paper: 33 750 of
    # ~41 000) — after rescale it lands in the thousands.
    assert sum(data.values()) > 1000
