"""§6.2: the U.S. CMS MOP production campaign.

Paper: "U.S. CMS has used Grid3 resources on 11 sites to simulate more
than 14 million GEANT4 full detector simulation events ... The official
OSCAR production jobs are long (some more than 30 hours) and not all
sites have been able to accommodate running them.  Approximately 70% of
CMSIM and OSCAR jobs completed successfully ... Jobs often failed due
to site configuration problems, or in groups from site service
failures."
"""

import pytest

from repro import Grid3, Grid3Config
from repro.failures import FailureProfile
from repro.sim import HOUR

SCALE = 100.0


def run_campaign():
    grid = Grid3(Grid3Config(
        seed=62, scale=SCALE, duration_days=90, apps=["uscms"],
        failures=FailureProfile(),
        misconfig_probability=0.2,
    ))
    grid.run_full()
    return grid


def test_cms_campaign(benchmark):
    grid = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    db = grid.acdc_db
    records = db.records(vo="uscms")
    app = grid.apps["uscms"]

    sim_records = [r for r in records if "oscar" in r.name or "cmsim" in r.name]
    success = (
        sum(r.succeeded for r in sim_records) / len(sim_records)
        if sim_records else 0.0
    )
    long_jobs = [r for r in sim_records if r.runtime > 30 * HOUR]
    sites_used = len({r.site for r in records})
    events_rescaled = app.simulated_events * SCALE

    print(f"\nCMS campaign (90 d at scale {SCALE:.0f}):")
    print(f"  sites used: {sites_used} (paper: 11)")
    print(f"  CMSIM/OSCAR success rate: {success:.0%} (paper: ~70%)")
    print(f"  simulation jobs >30 h: {len(long_jobs)}/{len(sim_records)}")
    print(f"  GEANT4 events simulated (rescaled): {events_rescaled:,.0f} "
          f"(paper: 14M over 150 d)")
    print(f"  failure breakdown: {db.failure_breakdown(vo='uscms')}")

    assert sim_records, "no simulation jobs completed"
    # §6.2 shapes.
    assert sites_used >= 3
    assert 0.4 <= success <= 0.98      # around the paper's ~70 %
    assert long_jobs, "OSCAR production must include >30 h jobs"
    assert events_rescaled > 1e6
    # Correlated failures: when failures happen, site causes dominate
    # ("in groups from site service failures").
    breakdown = db.failure_breakdown(vo="uscms")
    if sum(breakdown.values()) >= 10:
        assert breakdown.get("site", 0) >= sum(breakdown.values()) * 0.4
